// Package gateway is the scatter-gather query front for a sharded SCPM
// deployment: one HTTP handler fanning queries out to N scpm-serve
// replicas — each serving one lattice partition per the shard manifest
// — and merging the answers so clients see the same responses a
// single-process server would produce.
//
// Routing follows the manifest's ownership rule. Queries whose answer
// lives on exactly one shard (/epsilon, /sets/{id}) go to that shard
// alone and are proxied verbatim; enumeration queries (/sets,
// /patterns, /vertices/{v}) scatter to every shard and gather into the
// canonical order, which is byte-identical to single-process output
// because the partitions are disjoint slices of one canonically-sorted
// result. Ranked queries merge per-shard top-k lists under the same
// comparator the shards use. POST /updates forwards the NDJSON batch
// to every shard; /version aggregates the per-shard versions into a
// version vector and flags skew; /healthz reports per-shard
// reachability.
//
// A slow or dead replica degrades, not fails, scatter queries: after
// one bounded retry (Config.RetryBackoff) its slice is dropped from
// the merge and the response carries the PartialHeader header naming
// the missing shards (see docs/FILE_FORMATS.md). Only a single-owner
// query whose owning shard is down answers 503.
package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/scpm/scpm/internal/obs"
	"github.com/scpm/scpm/internal/server"
	"github.com/scpm/scpm/internal/shard"
)

// PartialHeader is the response header naming the shards (comma-
// separated indices) whose slice is missing from a degraded
// scatter-gather answer.
const PartialHeader = "X-Scpm-Partial-Shards"

// DefaultTimeout bounds each per-shard subrequest when
// Config.Timeout is unset.
const DefaultTimeout = 10 * time.Second

// DefaultRetryBackoff is the pause before the single retry of a
// transiently-failed GET subrequest when Config.RetryBackoff is unset.
const DefaultRetryBackoff = 50 * time.Millisecond

// maxUpdateBody bounds one forwarded POST /updates body, matching the
// shard servers' own limit.
const maxUpdateBody = 32 << 20

// Config assembles a Gateway.
type Config struct {
	// Manifest is the shard map (shard count, ownership, dataset
	// shape); required.
	Manifest *shard.Manifest
	// Shards holds one base URL per shard, indexed by shard number —
	// e.g. "http://127.0.0.1:8081". Must match Manifest.Shards.
	Shards []string
	// Timeout bounds each per-shard subrequest; 0 means DefaultTimeout.
	Timeout time.Duration
	// RetryBackoff is the pause before the one retry a transiently-
	// failed GET subrequest gets (unreachable, timed out, or 5xx)
	// before its shard is declared down; 0 means DefaultRetryBackoff,
	// negative disables retries. POSTs never retry — a replay of an
	// /updates batch whose first attempt died mid-flight could apply it
	// twice.
	RetryBackoff time.Duration
	// Client issues the subrequests; nil uses http.DefaultClient (the
	// per-shard timeout still applies through request contexts).
	Client *http.Client
	// Logger, when set, receives one structured key=value line per
	// gateway request (method, path, status, bytes, duration).
	Logger *slog.Logger
	// Metrics is the registry the gateway's instruments register on and
	// GET /metrics serves from; nil means a private registry.
	Metrics *obs.Registry
}

// Gateway is the scatter-gather handler. Build one with New; it is an
// http.Handler safe for concurrent use.
type Gateway struct {
	man     *shard.Manifest
	shards  []string
	client  *http.Client
	timeout time.Duration
	backoff time.Duration
	logger  *slog.Logger
	mux     *http.ServeMux
	root    http.Handler // mux wrapped in request instrumentation
	metrics *gwMetrics
	attrID  map[string]int32
}

// New builds the gateway and installs its routes.
func New(cfg Config) (*Gateway, error) {
	if cfg.Manifest == nil {
		return nil, fmt.Errorf("gateway: Config.Manifest is required")
	}
	if err := cfg.Manifest.Verify(); err != nil {
		return nil, err
	}
	if len(cfg.Shards) != cfg.Manifest.Shards {
		return nil, fmt.Errorf("gateway: %d shard URLs for a %d-shard manifest", len(cfg.Shards), cfg.Manifest.Shards)
	}
	gw := &Gateway{
		man:     cfg.Manifest,
		shards:  make([]string, len(cfg.Shards)),
		client:  cfg.Client,
		timeout: cfg.Timeout,
		backoff: cfg.RetryBackoff,
		logger:  cfg.Logger,
		mux:     http.NewServeMux(),
		attrID:  make(map[string]int32),
	}
	for i, u := range cfg.Shards {
		gw.shards[i] = strings.TrimRight(u, "/")
	}
	if gw.client == nil {
		gw.client = http.DefaultClient
	}
	if gw.timeout <= 0 {
		gw.timeout = DefaultTimeout
	}
	if gw.backoff == 0 {
		gw.backoff = DefaultRetryBackoff
	}
	for _, r := range cfg.Manifest.Roots {
		gw.attrID[r.Attr] = r.ID
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	gw.metrics = newGwMetrics(reg)
	gw.mux.HandleFunc("GET /healthz", gw.handleHealthz)
	gw.mux.HandleFunc("GET /readyz", gw.handleReadyz)
	gw.mux.HandleFunc("GET /stats", gw.handleStats)
	gw.mux.HandleFunc("GET /sets", gw.handleSets)
	gw.mux.HandleFunc("GET /sets/{id}", gw.handleSetByID)
	gw.mux.HandleFunc("GET /patterns", gw.handlePatterns)
	gw.mux.HandleFunc("GET /vertices/{v}", gw.handleVertex)
	gw.mux.HandleFunc("GET /epsilon", gw.handleEpsilon)
	gw.mux.HandleFunc("GET /version", gw.handleVersion)
	gw.mux.HandleFunc("POST /updates", gw.handleUpdates)
	obs.Mount(gw.mux, reg)
	gw.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown path %q", r.URL.Path))
	})
	gw.root = gw.metrics.http.Instrument(gw.mux, gw.observe)
	return gw, nil
}

// ServeHTTP implements http.Handler. Every request flows through the
// obs middleware before reaching the route table.
func (gw *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	gw.root.ServeHTTP(w, r)
}

// observe receives every completed request from the instrumentation
// middleware and emits the structured access-log line.
func (gw *Gateway) observe(r *http.Request, o obs.RequestObservation) {
	if gw.logger == nil {
		return
	}
	gw.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
		slog.String("method", r.Method),
		slog.String("path", r.URL.RequestURI()),
		slog.Int("status", o.Status),
		slog.Int("bytes", o.Bytes),
		slog.Duration("duration", o.Duration),
	)
}

// shardResp is one shard's answer to a scattered subrequest.
type shardResp struct {
	shard  int
	status int
	body   []byte
	err    error
}

// ok reports a transport-level success with HTTP 200.
func (r shardResp) ok() bool { return r.err == nil && r.status == http.StatusOK }

// down reports a shard that could not answer at all: unreachable,
// timed out, or 5xx.
func (r shardResp) down() bool { return r.err != nil || r.status >= 500 }

// fetch issues one subrequest to one shard. A transiently-failed GET
// (unreachable, timed out, 5xx) gets exactly one retry after a short
// backoff before its shard is declared down — a replica mid-restart or
// shedding one overloaded request answers the retry, so the client
// never sees a partial response for a blip. POSTs are never replayed.
func (gw *Gateway) fetch(ctx context.Context, k int, method, pathAndQuery string, body []byte) shardResp {
	resp := gw.fetchOnce(ctx, k, method, pathAndQuery, body)
	if !resp.down() || method != http.MethodGet || gw.backoff < 0 {
		return resp
	}
	select {
	case <-ctx.Done():
		return resp
	case <-time.After(gw.backoff):
	}
	gw.metrics.retryAttempts.With(shardLabel(k)).Inc()
	resp = gw.fetchOnce(ctx, k, method, pathAndQuery, body)
	if resp.down() {
		gw.metrics.retryGaveUp.With(shardLabel(k)).Inc()
	}
	return resp
}

// fetchOnce issues one subrequest attempt under the gateway timeout.
func (gw *Gateway) fetchOnce(ctx context.Context, k int, method, pathAndQuery string, body []byte) shardResp {
	start := time.Now()
	defer func() {
		gw.metrics.shardDuration.With(shardLabel(k)).Observe(time.Since(start).Seconds())
	}()
	ctx, cancel := context.WithTimeout(ctx, gw.timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, gw.shards[k]+pathAndQuery, rd)
	if err != nil {
		return shardResp{shard: k, err: err}
	}
	resp, err := gw.client.Do(req)
	if err != nil {
		return shardResp{shard: k, err: err}
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return shardResp{shard: k, err: err}
	}
	return shardResp{shard: k, status: resp.StatusCode, body: b}
}

// scatter fans one subrequest out to every shard concurrently and
// gathers the answers, indexed by shard.
func (gw *Gateway) scatter(ctx context.Context, method, pathAndQuery string, body []byte) []shardResp {
	out := make([]shardResp, len(gw.shards))
	var wg sync.WaitGroup
	for k := range gw.shards {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			out[k] = gw.fetch(ctx, k, method, pathAndQuery, body)
		}(k)
	}
	wg.Wait()
	return out
}

// partition splits scatter answers into served slices, shards that are
// down, and (when one shard rejected the query with a 4xx) the client
// error to relay — the query is equally invalid on every shard, so one
// rejection speaks for all.
func partition(resps []shardResp) (served []shardResp, down []int, clientErr *shardResp) {
	for i := range resps {
		r := resps[i]
		switch {
		case r.ok():
			served = append(served, r)
		case r.down():
			down = append(down, r.shard)
		case r.status >= 400 && r.status < 500:
			if clientErr == nil {
				clientErr = &resps[i]
			}
		}
	}
	return served, down, clientErr
}

// degrade annotates a partial scatter answer: the PartialHeader names
// the shards whose slice is missing, the partial-response counter
// ticks once, and each missing shard's dead-shard counter ticks.
func (gw *Gateway) degrade(w http.ResponseWriter, down []int) {
	if len(down) == 0 {
		return
	}
	gw.metrics.partialResponses.Inc()
	strs := make([]string, len(down))
	for i, k := range down {
		strs[i] = strconv.Itoa(k)
		gw.metrics.deadShards.With(shardLabel(k)).Inc()
	}
	w.Header().Set(PartialHeader, strings.Join(strs, ","))
}

// relay copies a shard's response verbatim — status, JSON body, and
// (when degraded) the partial header.
func relay(w http.ResponseWriter, r shardResp) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(r.status)
	w.Write(r.body) //nolint:errcheck // client gone; nothing to do
}

// attrIDs maps a DTO's attribute names through the manifest to ids for
// canonical ordering. Names outside the manifest (grown by live
// updates past the plan) sort after all planned ids, by name.
func (gw *Gateway) attrIDs(names []string) []int32 {
	out := make([]int32, len(names))
	for i, n := range names {
		if id, ok := gw.attrID[n]; ok {
			out[i] = id
		} else {
			out[i] = math.MaxInt32
		}
	}
	return out
}

// compareAttrs is the canonical attribute-set order: size first, then
// elementwise ids — the same order core.sortResult and the index use.
func compareAttrs(a, b []int32) int {
	if len(a) != len(b) {
		return len(a) - len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return int(a[i]) - int(b[i])
		}
	}
	return 0
}

// writeJSON writes one JSON document exactly like the shard servers
// do (indent 2, sorted map keys), so merged responses stay
// byte-identical to single-process ones.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

// writeNDJSON streams items one JSON object per line.
func writeNDJSON(w http.ResponseWriter, n int, item func(i int) any) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for i := 0; i < n; i++ {
		if err := enc.Encode(item(i)); err != nil {
			return
		}
	}
}

// writeErr writes the JSON error envelope {"error": msg}.
func writeErr(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// wantNDJSON reports whether the client asked for NDJSON output.
func wantNDJSON(r *http.Request) bool {
	if r.URL.Query().Get("format") == "ndjson" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

// shardQuery renders the query to forward to shards: the client's
// query minus the format selector (the gateway always gathers JSON and
// re-encodes in the client's requested format).
func shardQuery(r *http.Request) string {
	q := r.URL.Query()
	q.Del("format")
	if enc := q.Encode(); enc != "" {
		return "?" + enc
	}
	return ""
}

// handleSets scatters GET /sets and merges the per-shard slices into
// canonical (or ranked) order.
func (gw *Gateway) handleSets(w http.ResponseWriter, r *http.Request) {
	resps := gw.scatter(r.Context(), http.MethodGet, "/sets"+shardQuery(r), nil)
	served, down, clientErr := partition(resps)
	if clientErr != nil {
		relay(w, *clientErr)
		return
	}
	if len(served) == 0 {
		writeErr(w, http.StatusServiceUnavailable, "no shard answered /sets")
		return
	}

	type keyed struct {
		dto server.SetDTO
		ids []int32
	}
	var all []keyed
	for _, resp := range served {
		var payload struct {
			Sets []server.SetDTO `json:"sets"`
		}
		if err := json.Unmarshal(resp.body, &payload); err != nil {
			writeErr(w, http.StatusBadGateway, fmt.Sprintf("shard %d: malformed /sets payload: %v", resp.shard, err))
			return
		}
		for _, dto := range payload.Sets {
			all = append(all, keyed{dto: dto, ids: gw.attrIDs(dto.Attrs)})
		}
	}

	if rank := r.URL.Query().Get("rank"); rank != "" {
		cmp, ok := rankingComparator(rank)
		if !ok {
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("unknown rank %q (want support, epsilon or delta)", rank))
			return
		}
		sort.SliceStable(all, func(i, j int) bool {
			if c := cmp(all[i].dto, all[j].dto); c != 0 {
				return c > 0
			}
			if all[i].dto.Support != all[j].dto.Support {
				return all[i].dto.Support > all[j].dto.Support
			}
			return compareAttrs(all[i].ids, all[j].ids) < 0
		})
	} else {
		sort.SliceStable(all, func(i, j int) bool {
			return compareAttrs(all[i].ids, all[j].ids) < 0
		})
	}
	if k, err := strconv.Atoi(r.URL.Query().Get("k")); err == nil && k > 0 && len(all) > k {
		all = all[:k]
	}

	gw.degrade(w, down)
	if wantNDJSON(r) {
		writeNDJSON(w, len(all), func(i int) any { return all[i].dto })
		return
	}
	out := make([]server.SetDTO, len(all))
	for i := range all {
		out[i] = all[i].dto
	}
	writeJSON(w, http.StatusOK, map[string]any{"sets": out, "total": len(out)})
}

// rankingComparator maps the rank parameter to a three-way comparator
// mirroring the shards' own ranking (higher is better).
func rankingComparator(rank string) (func(a, b server.SetDTO) int, bool) {
	cmpF := func(x, y float64) int {
		switch {
		case x > y:
			return 1
		case x < y:
			return -1
		default:
			return 0
		}
	}
	switch strings.ToLower(rank) {
	case "support", "sigma":
		return func(a, b server.SetDTO) int { return a.Support - b.Support }, true
	case "epsilon", "eps":
		return func(a, b server.SetDTO) int { return cmpF(a.Epsilon, b.Epsilon) }, true
	case "delta":
		return func(a, b server.SetDTO) int { return cmpF(parseDelta(a.Delta), parseDelta(b.Delta)) }, true
	}
	return nil, false
}

// parseDelta decodes the string-encoded δ ("inf" or a decimal).
func parseDelta(s string) float64 {
	if s == "inf" {
		return math.Inf(1)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0
	}
	return v
}

// handleSetByID scatters GET /sets/{id}: the owning shard answers 200
// and its response is relayed verbatim; uniform 404 from every live
// shard means the id does not exist.
func (gw *Gateway) handleSetByID(w http.ResponseWriter, r *http.Request) {
	path := "/sets/" + r.PathValue("id")
	resps := gw.scatter(r.Context(), http.MethodGet, path, nil)
	var notFound *shardResp
	var down []int
	for i := range resps {
		switch {
		case resps[i].ok():
			relay(w, resps[i])
			return
		case resps[i].down():
			down = append(down, resps[i].shard)
		case resps[i].status == http.StatusNotFound && notFound == nil:
			notFound = &resps[i]
		}
	}
	if len(down) > 0 {
		// The id might live on a dead shard; absence is not provable.
		gw.degrade(w, down)
		writeErr(w, http.StatusServiceUnavailable,
			fmt.Sprintf("set not found on any reachable shard, and shard(s) %v did not answer", down))
		return
	}
	if notFound != nil {
		relay(w, *notFound)
		return
	}
	writeErr(w, http.StatusBadGateway, "no shard produced a usable /sets/{id} answer")
}

// handlePatterns scatters GET /patterns and merges slices canonically.
func (gw *Gateway) handlePatterns(w http.ResponseWriter, r *http.Request) {
	resps := gw.scatter(r.Context(), http.MethodGet, "/patterns"+shardQuery(r), nil)
	served, down, clientErr := partition(resps)
	if clientErr != nil {
		relay(w, *clientErr)
		return
	}
	if len(served) == 0 {
		writeErr(w, http.StatusServiceUnavailable, "no shard answered /patterns")
		return
	}
	type keyed struct {
		dto server.PatternDTO
		ids []int32
	}
	var all []keyed
	for _, resp := range served {
		var payload struct {
			Patterns []server.PatternDTO `json:"patterns"`
		}
		if err := json.Unmarshal(resp.body, &payload); err != nil {
			writeErr(w, http.StatusBadGateway, fmt.Sprintf("shard %d: malformed /patterns payload: %v", resp.shard, err))
			return
		}
		for _, dto := range payload.Patterns {
			all = append(all, keyed{dto: dto, ids: gw.attrIDs(dto.Attrs)})
		}
	}
	// Patterns of one attribute set all live on the owning shard and
	// arrive pre-sorted (size desc, density desc); a stable merge on
	// the canonical set order alone reproduces the global order.
	sort.SliceStable(all, func(i, j int) bool {
		return compareAttrs(all[i].ids, all[j].ids) < 0
	})
	if limit, err := strconv.Atoi(r.URL.Query().Get("limit")); err == nil && limit > 0 && len(all) > limit {
		all = all[:limit]
	}
	gw.degrade(w, down)
	if wantNDJSON(r) {
		writeNDJSON(w, len(all), func(i int) any { return all[i].dto })
		return
	}
	out := make([]server.PatternDTO, len(all))
	for i := range all {
		out[i] = all[i].dto
	}
	writeJSON(w, http.StatusOK, map[string]any{"patterns": out, "total": len(out)})
}

// handleVertex scatters GET /vertices/{v} and merges the per-shard
// pattern lists; a vertex is known if any shard knows it.
func (gw *Gateway) handleVertex(w http.ResponseWriter, r *http.Request) {
	label := r.PathValue("v")
	resps := gw.scatter(r.Context(), http.MethodGet, "/vertices/"+label, nil)
	served, down, _ := partition(resps)
	if len(served) == 0 {
		if len(down) > 0 {
			gw.degrade(w, down)
			writeErr(w, http.StatusServiceUnavailable,
				fmt.Sprintf("no reachable shard knows vertex %q, and shard(s) %v did not answer", label, down))
			return
		}
		for i := range resps {
			if resps[i].status == http.StatusNotFound {
				relay(w, resps[i])
				return
			}
		}
		writeErr(w, http.StatusBadGateway, "no shard produced a usable /vertices answer")
		return
	}
	type keyed struct {
		dto server.PatternDTO
		ids []int32
	}
	var all []keyed
	for _, resp := range served {
		var payload struct {
			Patterns []server.PatternDTO `json:"patterns"`
		}
		if err := json.Unmarshal(resp.body, &payload); err != nil {
			writeErr(w, http.StatusBadGateway, fmt.Sprintf("shard %d: malformed /vertices payload: %v", resp.shard, err))
			return
		}
		for _, dto := range payload.Patterns {
			all = append(all, keyed{dto: dto, ids: gw.attrIDs(dto.Attrs)})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		return compareAttrs(all[i].ids, all[j].ids) < 0
	})
	pats := make([]server.PatternDTO, len(all))
	var setIDs []string
	seen := make(map[string]bool)
	for i := range all {
		pats[i] = all[i].dto
		if id := pats[i].Set; !seen[id] {
			seen[id] = true
			setIDs = append(setIDs, id)
		}
	}
	if setIDs == nil {
		setIDs = []string{}
	}
	gw.degrade(w, down)
	writeJSON(w, http.StatusOK, map[string]any{
		"vertex":   label,
		"patterns": pats,
		"sets":     setIDs,
	})
}

// handleEpsilon routes GET /epsilon to the single shard owning the
// queried attribute set and relays its answer verbatim.
func (gw *Gateway) handleEpsilon(w http.ResponseWriter, r *http.Request) {
	names := parseAttrList(r.URL.Query()["attrs"])
	if len(names) == 0 {
		writeErr(w, http.StatusBadRequest, "attrs parameter is required (e.g. /epsilon?attrs=A,B)")
		return
	}
	owner := gw.man.Route(names)
	resp := gw.fetch(r.Context(), owner, http.MethodGet, "/epsilon"+shardQuery(r), nil)
	if resp.err != nil {
		writeErr(w, http.StatusServiceUnavailable,
			fmt.Sprintf("owning shard %d is unreachable: %v", owner, resp.err))
		return
	}
	relay(w, resp)
}

// parseAttrList splits repeated and comma-separated attrs parameters
// into a deduplicated name list, mirroring the shard servers.
func parseAttrList(vals []string) []string {
	var out []string
	seen := make(map[string]bool)
	for _, v := range vals {
		for _, name := range strings.Split(v, ",") {
			name = strings.TrimSpace(name)
			if name != "" && !seen[name] {
				seen[name] = true
				out = append(out, name)
			}
		}
	}
	return out
}

// handleStats scatters GET /stats and reports the per-shard documents
// plus summed index totals.
func (gw *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	resps := gw.scatter(r.Context(), http.MethodGet, "/stats", nil)
	served, down, _ := partition(resps)
	perShard := make([]any, len(gw.shards))
	totalSets, totalPatterns := 0, 0
	for k := range perShard {
		perShard[k] = map[string]any{"shard": k, "error": "unreachable"}
	}
	for _, resp := range served {
		var doc map[string]any
		if err := json.Unmarshal(resp.body, &doc); err != nil {
			continue
		}
		doc["shard"] = resp.shard
		perShard[resp.shard] = doc
		if idx, ok := doc["index"].(map[string]any); ok {
			if v, ok := idx["sets"].(float64); ok {
				totalSets += int(v)
			}
			if v, ok := idx["patterns"].(float64); ok {
				totalPatterns += int(v)
			}
		}
	}
	gw.degrade(w, down)
	writeJSON(w, http.StatusOK, map[string]any{
		"index":  map[string]any{"sets": totalSets, "patterns": totalPatterns},
		"shards": perShard,
	})
}

// shardVersion is one shard's entry in the aggregated version vector.
type shardVersion struct {
	Shard         int    `json:"shard"`
	ServedVersion uint64 `json:"served_version"`
	DataVersion   uint64 `json:"data_version"`
	Reachable     bool   `json:"reachable"`
	Error         string `json:"error,omitempty"`
}

// versionVector gathers every shard's /version into the vector plus a
// skew verdict: true when reachable shards serve different versions
// (or lag their own data head).
func (gw *Gateway) versionVector(ctx context.Context) ([]shardVersion, bool, []int) {
	resps := gw.scatter(ctx, http.MethodGet, "/version", nil)
	vec := make([]shardVersion, len(gw.shards))
	var down []int
	skew := false
	var seenServed *uint64
	for _, resp := range resps {
		sv := shardVersion{Shard: resp.shard}
		switch {
		case resp.err != nil:
			sv.Error = resp.err.Error()
		case resp.status != http.StatusOK:
			sv.Error = fmt.Sprintf("status %d", resp.status)
		default:
			var doc struct {
				ServedVersion uint64 `json:"served_version"`
				DataVersion   uint64 `json:"data_version"`
			}
			if err := json.Unmarshal(resp.body, &doc); err != nil {
				sv.Error = fmt.Sprintf("malformed /version: %v", err)
				break
			}
			sv.Reachable = true
			sv.ServedVersion = doc.ServedVersion
			sv.DataVersion = doc.DataVersion
			if doc.ServedVersion != doc.DataVersion {
				skew = true
			}
			if seenServed == nil {
				v := doc.ServedVersion
				seenServed = &v
			} else if *seenServed != doc.ServedVersion {
				skew = true
			}
		}
		if !sv.Reachable {
			down = append(down, resp.shard)
		}
		vec[resp.shard] = sv
	}
	if skew {
		gw.metrics.versionSkew.Set(1)
	} else {
		gw.metrics.versionSkew.Set(0)
	}
	return vec, skew, down
}

// handleVersion is GET /version: the aggregated version vector.
func (gw *Gateway) handleVersion(w http.ResponseWriter, r *http.Request) {
	vec, skew, down := gw.versionVector(r.Context())
	gw.degrade(w, down)
	writeJSON(w, http.StatusOK, map[string]any{
		"shards": vec,
		"skew":   skew,
	})
}

// handleHealthz reports per-shard reachability and version skew. The
// gateway itself always answers 200 — "degraded" in the body is the
// operational signal.
func (gw *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	vec, skew, down := gw.versionVector(r.Context())
	status := "ok"
	if skew || len(down) > 0 {
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": status,
		"shards": vec,
		"skew":   skew,
	})
}

// handleUpdates forwards one POST /updates NDJSON batch to every
// shard, so all replicas apply the same delta and re-mine their slice.
func (gw *Gateway) handleUpdates(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxUpdateBody))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("reading update body: %v", err))
		return
	}
	resps := gw.scatter(r.Context(), http.MethodPost, "/updates", body)
	perShard := make([]any, len(gw.shards))
	accepted := 0
	var down []int
	var clientErr *shardResp
	for i := range resps {
		resp := resps[i]
		entry := map[string]any{"shard": resp.shard}
		switch {
		case resp.err != nil:
			entry["error"] = resp.err.Error()
			down = append(down, resp.shard)
		case resp.status == http.StatusAccepted:
			accepted++
			var doc map[string]any
			if json.Unmarshal(resp.body, &doc) == nil {
				entry["response"] = doc
			}
		default:
			entry["status"] = resp.status
			if resp.status >= 400 && resp.status < 500 && clientErr == nil {
				clientErr = &resps[i]
			} else if resp.status >= 500 {
				down = append(down, resp.shard)
			}
		}
		perShard[resp.shard] = entry
	}
	if clientErr != nil && accepted == 0 {
		// Uniformly rejected input: relay the shard's 4xx.
		relay(w, *clientErr)
		return
	}
	status := http.StatusAccepted
	if accepted < len(gw.shards) {
		// A divergent write: some shards applied the batch, others did
		// not. 502 tells the operator the replicas have drifted (and
		// /version will flag the skew) — clients must not retry blindly.
		status = http.StatusBadGateway
	}
	gw.degrade(w, down)
	writeJSON(w, status, map[string]any{
		"forwarded": len(gw.shards),
		"accepted":  accepted,
		"shards":    perShard,
	})
}
