package gateway

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/scpm/scpm/internal/core"
	"github.com/scpm/scpm/internal/graph"
	"github.com/scpm/scpm/internal/index"
	"github.com/scpm/scpm/internal/server"
	"github.com/scpm/scpm/internal/shard"
)

// testGraph builds the randomized attributed graph the shard
// equivalence tests use.
func testGraph(t *testing.T, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const n = 160
	const numAttrs = 6
	b := graph.NewBuilder()
	for v := 0; v < n; v++ {
		var attrs []string
		for a := 0; a < numAttrs; a++ {
			if rng.Float64() < 0.55 {
				attrs = append(attrs, fmt.Sprintf("a%d", a))
			}
		}
		if _, err := b.AddVertex(fmt.Sprintf("v%d", v), attrs...); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			if err := b.AddEdge(int32(u), int32(v)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for c := 0; c < 10; c++ {
		var group []int32
		for len(group) < 6 {
			group = append(group, int32(rng.Intn(n)))
		}
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				if group[i] != group[j] && rng.Float64() < 0.9 {
					if err := b.AddEdge(group[i], group[j]); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testParams() core.Params {
	return core.Params{
		SigmaMin:      20,
		Gamma:         0.5,
		MinSize:       4,
		EpsMin:        0.05,
		K:             3,
		MaxAttrs:      3,
		RecordLattice: true,
	}
}

// bootServer mines with p and serves the result — p carries the
// ShardOwner for replica servers and none for the reference server.
func bootServer(t *testing.T, g *graph.Graph, p core.Params) *httptest.Server {
	t.Helper()
	res, err := core.Mine(context.Background(), g, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	idx := index.Build(res, g)
	srv, err := server.New(server.Config{
		Index:     idx,
		Graph:     g,
		Estimator: p.NewEstimator(),
		Model:     p.NewModel(g),
		Result:    res,
		Params:    &p,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

// bootCluster boots n shard replicas, a reference single-process
// server over the same graph, and the gateway in front of the
// replicas.
func bootCluster(t *testing.T, seed int64, n int) (gw, single *httptest.Server, man *shard.Manifest, replicas []*httptest.Server) {
	t.Helper()
	p := testParams()
	g := testGraph(t, seed)
	man, err := shard.BuildManifest(g, p.SigmaMin, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	urls := make([]string, n)
	for k := 0; k < n; k++ {
		// Each replica mines the same graph value; updates re-derive
		// ownership per version through the dynamic ShardOwner.
		ts := bootServer(t, g, shard.Params(p, k, n))
		replicas = append(replicas, ts)
		urls[k] = ts.URL
	}
	single = bootServer(t, g, p)
	h, err := New(Config{Manifest: man, Shards: urls, Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	gw = httptest.NewServer(h)
	t.Cleanup(gw.Close)
	return gw, single, man, replicas
}

func get(t *testing.T, base, path string) (int, http.Header, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, string(b)
}

// requireSame asserts the gateway's answer is byte-identical to the
// single-process server's.
func requireSame(t *testing.T, gw, single *httptest.Server, path string) {
	t.Helper()
	gs, _, gb := get(t, gw.URL, path)
	ss, _, sb := get(t, single.URL, path)
	if gs != ss {
		t.Fatalf("GET %s: gateway %d, single-process %d", path, gs, ss)
	}
	if gb != sb {
		t.Fatalf("GET %s: gateway and single-process responses differ\ngateway:\n%s\nsingle:\n%s", path, gb, sb)
	}
}

// TestGatewayMatchesSingleProcess is the scatter-gather equivalence
// test: every merged or routed read answers byte-for-byte what one
// un-sharded server answers.
func TestGatewayMatchesSingleProcess(t *testing.T) {
	gw, single, man, _ := bootCluster(t, 41, 2)

	paths := []string{
		"/sets",
		"/sets?format=ndjson",
		"/sets?rank=epsilon&k=3",
		"/sets?rank=support",
		"/sets?rank=delta&k=5",
		"/sets?min_support=25",
		"/patterns",
		"/patterns?format=ndjson",
		"/patterns?min_size=4",
	}
	for _, p := range paths {
		requireSame(t, gw, single, p)
	}

	// Single-owner routes: every emitted set's id page and ε answer.
	status, _, body := get(t, single.URL, "/sets")
	if status != http.StatusOK {
		t.Fatalf("/sets on reference server: %d", status)
	}
	ids := extract(body, `"id": "`)
	if len(ids) == 0 {
		t.Fatal("reference server serves no sets")
	}
	for _, id := range ids {
		requireSame(t, gw, single, "/sets/"+id)
	}
	attrLists := extractAttrLists(body)
	for _, attrs := range attrLists {
		requireSame(t, gw, single, "/epsilon?attrs="+attrs)
	}
	// On-demand ε for a set the mining run never emitted: pairs of
	// manifest roots not in the index still answer identically.
	if len(man.Roots) >= 2 {
		q := man.Roots[0].Attr + "," + man.Roots[len(man.Roots)-1].Attr
		requireSame(t, gw, single, "/epsilon?attrs="+q)
	}

	// A vertex lookup merges patterns across shards.
	_, _, pbody := get(t, single.URL, "/patterns?limit=1")
	if i := strings.Index(pbody, `"vertices": [`); i >= 0 {
		rest := pbody[i+len(`"vertices": [`):]
		if j := strings.Index(rest, `"`); j >= 0 {
			if k := strings.Index(rest[j+1:], `"`); k >= 0 {
				requireSame(t, gw, single, "/vertices/"+rest[j+1:j+1+k])
			}
		}
	}

	// Errors relay too.
	requireSame(t, gw, single, "/epsilon")
	requireSame(t, gw, single, "/sets?rank=bogus")
	requireSame(t, gw, single, "/sets/no-such-id")
}

// extract pulls the quoted values following each occurrence of marker.
func extract(body, marker string) []string {
	var out []string
	for i := strings.Index(body, marker); i >= 0; i = strings.Index(body, marker) {
		body = body[i+len(marker):]
		if j := strings.Index(body, `"`); j >= 0 {
			out = append(out, body[:j])
			body = body[j:]
		}
	}
	return out
}

// extractAttrLists renders each set's attrs array as a comma query.
func extractAttrLists(body string) []string {
	var out []string
	rest := body
	for {
		i := strings.Index(rest, `"attrs": [`)
		if i < 0 {
			return out
		}
		rest = rest[i+len(`"attrs": [`):]
		j := strings.Index(rest, `]`)
		if j < 0 {
			return out
		}
		segment := rest[:j]
		rest = rest[j:]
		var names []string
		for _, q := range strings.Split(segment, ",") {
			q = strings.Trim(strings.TrimSpace(q), `"`)
			if q != "" {
				names = append(names, q)
			}
		}
		if len(names) > 0 {
			out = append(out, strings.Join(names, ","))
		}
	}
}

// TestGatewayPartialDegradation kills one replica and asserts scatter
// reads degrade to partial results with the documented header — never
// a 500 — while single-owner reads for the dead shard answer 503.
func TestGatewayPartialDegradation(t *testing.T) {
	gw, _, man, replicas := bootCluster(t, 43, 2)

	// Choose an attribute owned by each shard before killing one.
	ownedBy := map[int]string{}
	for _, r := range man.Roots {
		if _, ok := ownedBy[r.Shard]; !ok {
			ownedBy[r.Shard] = r.Attr
		}
	}
	if len(ownedBy) < 2 {
		t.Skip("plan assigned all roots to one shard; degradation not observable")
	}
	replicas[1].Close()

	status, hdr, body := get(t, gw.URL, "/sets")
	if status != http.StatusOK {
		t.Fatalf("/sets with a dead shard: status %d body %s", status, body)
	}
	if got := hdr.Get(PartialHeader); got != "1" {
		t.Fatalf("/sets partial header = %q, want \"1\"", got)
	}
	if !strings.Contains(body, `"sets"`) {
		t.Fatalf("/sets degraded body lost its shape: %s", body)
	}

	// The live shard's single-owner answers still work…
	status, _, _ = get(t, gw.URL, "/epsilon?attrs="+ownedBy[0])
	if status != http.StatusOK {
		t.Fatalf("/epsilon for live shard's attr: %d", status)
	}
	// …the dead shard's answer 503.
	status, _, body = get(t, gw.URL, "/epsilon?attrs="+ownedBy[1])
	if status != http.StatusServiceUnavailable {
		t.Fatalf("/epsilon for dead shard's attr: %d (%s), want 503", status, body)
	}

	// Health reports the degradation.
	status, _, body = get(t, gw.URL, "/healthz")
	if status != http.StatusOK {
		t.Fatalf("/healthz: %d", status)
	}
	if !strings.Contains(body, `"status": "degraded"`) {
		t.Fatalf("/healthz does not report degraded: %s", body)
	}
}

// TestGatewayRetriesTransientFailure fronts one replica with a flaky
// proxy failing each GET's first attempt with a 503. The gateway's
// single bounded retry must hide the blip: scatter reads stay complete
// (no partial header) and byte-identical to the single-process answer,
// and single-owner routes through the flaky shard still answer 200.
func TestGatewayRetriesTransientFailure(t *testing.T) {
	p := testParams()
	g := testGraph(t, 53)
	const n = 2
	man, err := shard.BuildManifest(g, p.SigmaMin, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	urls := make([]string, n)
	for k := 0; k < n; k++ {
		ts := bootServer(t, g, shard.Params(p, k, n))
		urls[k] = ts.URL
	}
	single := bootServer(t, g, p)

	// The flaky proxy in front of shard 1: every distinct GET fails its
	// first attempt, then forwards to the real replica.
	var mu sync.Mutex
	firstAttempts := 0
	seen := map[string]bool{}
	target := urls[1]
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := r.Method + " " + r.URL.RequestURI()
		mu.Lock()
		first := !seen[key]
		seen[key] = true
		if first {
			firstAttempts++
		}
		mu.Unlock()
		if first {
			http.Error(w, "transient overload", http.StatusServiceUnavailable)
			return
		}
		resp, err := http.Get(target + r.URL.RequestURI())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body) //nolint:errcheck
	}))
	t.Cleanup(flaky.Close)
	urls[1] = flaky.URL

	h, err := New(Config{Manifest: man, Shards: urls, Timeout: 10 * time.Second, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	gw := httptest.NewServer(h)
	t.Cleanup(gw.Close)

	for _, path := range []string{"/sets", "/patterns", "/sets?rank=epsilon&k=3"} {
		status, hdr, body := get(t, gw.URL, path)
		if status != http.StatusOK {
			t.Fatalf("GET %s through flaky shard: %d (%s)", path, status, body)
		}
		if got := hdr.Get(PartialHeader); got != "" {
			t.Fatalf("GET %s: partial header %q despite the retry", path, got)
		}
		_, _, want := get(t, single.URL, path)
		if body != want {
			t.Fatalf("GET %s: retried answer differs from single-process\ngateway:\n%s\nsingle:\n%s", path, body, want)
		}
	}

	// A single-owner route through the flaky shard recovers too.
	for _, r := range man.Roots {
		if r.Shard != 1 {
			continue
		}
		status, _, body := get(t, gw.URL, "/epsilon?attrs="+r.Attr)
		if status != http.StatusOK {
			t.Fatalf("/epsilon via flaky shard: %d (%s)", status, body)
		}
		break
	}

	mu.Lock()
	defer mu.Unlock()
	if firstAttempts == 0 {
		t.Fatal("flaky proxy never saw a first attempt; test exercised nothing")
	}
}

// TestGatewayUpdateRoundTrip forwards one update batch through the
// gateway and asserts every replica applies it and converges to the
// same new version with no skew.
func TestGatewayUpdateRoundTrip(t *testing.T) {
	gw, _, _, replicas := bootCluster(t, 47, 2)

	ops := `{"op":"add_vertex","vertex":"fresh1","attrs":["a0","a1"]}` + "\n" +
		`{"op":"add_edge","u":"fresh1","v":"v1"}` + "\n"
	resp, err := http.Post(gw.URL+"/updates", "application/x-ndjson", strings.NewReader(ops))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /updates: %d (%s)", resp.StatusCode, b)
	}
	if !strings.Contains(string(b), `"accepted": 2`) {
		t.Fatalf("gateway did not forward to both shards: %s", b)
	}

	// Both replicas must converge: served == data on each, and the
	// aggregated vector must settle with no skew.
	deadline := time.Now().Add(15 * time.Second)
	for {
		_, _, body := get(t, gw.URL, "/version")
		if strings.Contains(body, `"skew": false`) && !strings.Contains(body, `"served_version": 0,`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas did not converge: %s", body)
		}
		time.Sleep(50 * time.Millisecond)
	}
	for k, ts := range replicas {
		_, _, body := get(t, ts.URL, "/version")
		if !strings.Contains(body, `"remines": 1`) || strings.Contains(body, `"served_version": 1,`) {
			t.Fatalf("shard %d did not remine and bump its served version: %s", k, body)
		}
	}
}
