package gateway

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// scrapeGateway fetches the gateway's own /metrics exposition.
func scrapeGateway(t *testing.T, gw *httptest.Server) string {
	t.Helper()
	status, _, body := get(t, gw.URL, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("GET /metrics = %d; body: %s", status, body)
	}
	return body
}

// metricValue extracts the value of an exact series (name plus label
// block) from an exposition body.
func metricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("series %s: bad value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s not found in exposition:\n%s", series, body)
	return 0
}

// TestGatewayMetricsKeySeries drives a scatter read and a version
// aggregation through a healthy cluster and asserts the per-endpoint
// and per-shard series.
func TestGatewayMetricsKeySeries(t *testing.T) {
	gw, _, _, _ := bootCluster(t, 61, 2)

	if status, _, body := get(t, gw.URL, "/sets"); status != http.StatusOK {
		t.Fatalf("/sets = %d: %s", status, body)
	}
	if status, _, body := get(t, gw.URL, "/version"); status != http.StatusOK {
		t.Fatalf("/version = %d: %s", status, body)
	}

	body := scrapeGateway(t, gw)
	if v := metricValue(t, body, `scpm_gateway_http_requests_total{endpoint="/sets",class="2xx"}`); v != 1 {
		t.Fatalf("/sets request count = %v, want 1", v)
	}
	if v := metricValue(t, body, `scpm_gateway_http_request_duration_seconds_bucket{endpoint="/sets",le="+Inf"}`); v != 1 {
		t.Fatalf("/sets latency histogram count = %v, want 1", v)
	}
	// Both shards answered the scatter, so each has subrequest timings.
	for _, shard := range []string{"0", "1"} {
		series := `scpm_gateway_shard_request_duration_seconds_count{shard="` + shard + `"}`
		if v := metricValue(t, body, series); v < 1 {
			t.Fatalf("shard %s subrequest count = %v, want >= 1", shard, v)
		}
	}
	// Replicas serve the same graph version: no skew.
	if v := metricValue(t, body, "scpm_gateway_version_skew"); v != 0 {
		t.Fatalf("version skew = %v, want 0", v)
	}
	if v := metricValue(t, body, "scpm_gateway_partial_responses_total"); v != 0 {
		t.Fatalf("partial responses on a healthy cluster = %v, want 0", v)
	}
}

// TestGatewayMetricsPartialDegradation kills a replica and asserts the
// degradation counters: a partial scatter response, the dead shard
// attribution, and the bounded retry that tried and gave up.
func TestGatewayMetricsPartialDegradation(t *testing.T) {
	gw, _, _, replicas := bootCluster(t, 43, 2)
	replicas[1].Close()

	if status, hdr, body := get(t, gw.URL, "/sets"); status != http.StatusOK {
		t.Fatalf("/sets with a dead shard = %d: %s", status, body)
	} else if hdr.Get(PartialHeader) != "1" {
		t.Fatalf("/sets partial header = %q, want \"1\"", hdr.Get(PartialHeader))
	}

	body := scrapeGateway(t, gw)
	if v := metricValue(t, body, "scpm_gateway_partial_responses_total"); v != 1 {
		t.Fatalf("partial responses = %v, want 1", v)
	}
	if v := metricValue(t, body, `scpm_gateway_dead_shards_total{shard="1"}`); v != 1 {
		t.Fatalf("dead shard count = %v, want 1", v)
	}
	if v := metricValue(t, body, `scpm_gateway_retry_attempts_total{shard="1"}`); v < 1 {
		t.Fatalf("retry attempts = %v, want >= 1", v)
	}
	if v := metricValue(t, body, `scpm_gateway_retry_gaveup_total{shard="1"}`); v < 1 {
		t.Fatalf("retries given up = %v, want >= 1", v)
	}
}

// TestGatewayReadyz: the gateway aggregates shard readiness — 200
// while every replica reports ready, 503 once one goes away.
func TestGatewayReadyz(t *testing.T) {
	gw, _, _, replicas := bootCluster(t, 47, 2)

	status, _, body := get(t, gw.URL, "/readyz")
	if status != http.StatusOK {
		t.Fatalf("/readyz on a healthy cluster = %d: %s", status, body)
	}
	if !strings.Contains(body, `"ready": true`) {
		t.Fatalf("/readyz body not ready: %s", body)
	}

	replicas[0].Close()
	status, _, body = get(t, gw.URL, "/readyz")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with a dead shard = %d: %s", status, body)
	}
	if !strings.Contains(body, `"ready": false`) {
		t.Fatalf("/readyz body after shard death: %s", body)
	}
}
