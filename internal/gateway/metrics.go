// Gateway observability: scatter-path instrumentation (per-shard
// subrequest latency, retry outcomes, partial responses, dead shards,
// version skew) plus GET /readyz aggregating shard readiness. Scrape
// GET /metrics; see docs/ARCHITECTURE.md ("Observability").

package gateway

import (
	"net/http"
	"strconv"

	"github.com/scpm/scpm/internal/obs"
)

// gwMetrics bundles the gateway's instruments. The shard label is the
// manifest shard index, so the label space is bounded by the topology.
type gwMetrics struct {
	reg  *obs.Registry
	http *obs.HTTPMetrics

	shardDuration    *obs.HistogramVec // per-shard subrequest latency
	retryAttempts    *obs.CounterVec   // bounded-retry second attempts
	retryGaveUp      *obs.CounterVec   // retries that still found the shard down
	partialResponses *obs.Counter      // responses carrying PartialHeader
	deadShards       *obs.CounterVec   // shard slices dropped from a merge
	versionSkew      *obs.Gauge        // 1 when reachable shards disagree
}

// newGwMetrics resolves the gateway instrument bundle on reg.
func newGwMetrics(reg *obs.Registry) *gwMetrics {
	return &gwMetrics{
		reg:  reg,
		http: obs.NewHTTPMetrics(reg, "scpm_gateway"),
		shardDuration: reg.HistogramVec("scpm_gateway_shard_request_duration_seconds",
			"Per-shard subrequest latency.", obs.LatencyBuckets, "shard"),
		retryAttempts: reg.CounterVec("scpm_gateway_retry_attempts_total",
			"Bounded-retry second attempts against a shard that looked down.", "shard"),
		retryGaveUp: reg.CounterVec("scpm_gateway_retry_gaveup_total",
			"Retries whose second attempt still found the shard down.", "shard"),
		partialResponses: reg.Counter("scpm_gateway_partial_responses_total",
			"Degraded scatter responses carrying the X-Scpm-Partial-Shards header."),
		deadShards: reg.CounterVec("scpm_gateway_dead_shards_total",
			"Shard slices dropped from a scatter merge because the shard was down.", "shard"),
		versionSkew: reg.Gauge("scpm_gateway_version_skew",
			"1 when the last version vector saw reachable shards on different versions, 0 otherwise."),
	}
}

// shardLabel renders a shard index as its metric label value.
func shardLabel(k int) string { return strconv.Itoa(k) }

// handleReadyz is GET /readyz: the gateway is ready exactly when every
// shard answers its own /readyz with 200 — a partial topology can
// still serve degraded reads, but a load balancer should prefer a
// gateway whose shards are all caught up.
func (gw *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	resps := gw.scatter(r.Context(), http.MethodGet, "/readyz", nil)
	perShard := make([]any, len(gw.shards))
	ready := true
	for _, resp := range resps {
		entry := map[string]any{"shard": resp.shard, "ready": false}
		switch {
		case resp.err != nil:
			entry["error"] = resp.err.Error()
			ready = false
		case resp.status != http.StatusOK:
			entry["status"] = resp.status
			ready = false
		default:
			entry["ready"] = true
		}
		perShard[resp.shard] = entry
	}
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{
		"ready":  ready,
		"shards": perShard,
	})
}
