package snapshot_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	scpm "github.com/scpm/scpm"
	"github.com/scpm/scpm/internal/snapshot"
)

// minedPair mines the paper example and returns the graph/index pair
// every test round-trips.
func minedPair(t *testing.T) (*scpm.Graph, *scpm.Index) {
	t.Helper()
	g := scpm.PaperExample()
	m, err := scpm.NewMiner(
		scpm.WithSigmaMin(3),
		scpm.WithGamma(0.6),
		scpm.WithMinSize(4),
		scpm.WithEpsMin(0.5),
		scpm.WithTopK(10),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Mine(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	return g, scpm.NewIndex(res, g)
}

func writeV3(t *testing.T, g *scpm.Graph, x *scpm.Index) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "pair.scpmidx")
	if err := snapshot.Write(path, g, x); err != nil {
		t.Fatal(err)
	}
	return path
}

func checkPair(t *testing.T, boot *snapshot.Boot, g *scpm.Graph, x *scpm.Index) {
	t.Helper()
	lg, lx := boot.Graph, boot.Index

	if lg.NumVertices() != g.NumVertices() || lg.NumEdges() != g.NumEdges() ||
		lg.NumAttributes() != g.NumAttributes() || lg.Version() != g.Version() {
		t.Fatalf("graph shape mismatch: %v vs %v", lg, g)
	}
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		if lg.VertexName(v) != g.VertexName(v) {
			t.Fatalf("vertex %d name %q, want %q", v, lg.VertexName(v), g.VertexName(v))
		}
		if !reflect.DeepEqual(lg.Neighbors(v), g.Neighbors(v)) {
			t.Fatalf("vertex %d neighbors %v, want %v", v, lg.Neighbors(v), g.Neighbors(v))
		}
		if !reflect.DeepEqual(lg.VertexAttrs(v), g.VertexAttrs(v)) {
			t.Fatalf("vertex %d attrs %v, want %v", v, lg.VertexAttrs(v), g.VertexAttrs(v))
		}
		if id, ok := lg.VertexID(g.VertexName(v)); !ok || id != v {
			t.Fatalf("vertex %q resolves to (%d,%v), want %d", g.VertexName(v), id, ok, v)
		}
	}
	for a := int32(0); int(a) < g.NumAttributes(); a++ {
		if lg.AttrName(a) != g.AttrName(a) {
			t.Fatalf("attr %d name %q, want %q", a, lg.AttrName(a), g.AttrName(a))
		}
		if !lg.AttrMembers(a).Equal(g.AttrMembers(a)) {
			t.Fatalf("attr %d members %v, want %v", a, lg.AttrMembers(a), g.AttrMembers(a))
		}
	}

	if !reflect.DeepEqual(lx.Sets(), x.Sets()) {
		t.Fatalf("sets mismatch:\n%v\nvs\n%v", lx.Sets(), x.Sets())
	}
	if !reflect.DeepEqual(lx.Patterns(), x.Patterns()) {
		t.Fatalf("patterns mismatch")
	}
	if lx.MiningStats() != x.MiningStats() {
		t.Fatalf("stats %+v, want %+v", lx.MiningStats(), x.MiningStats())
	}
	for i := range x.Sets() {
		if lx.SetID(i) != x.SetID(i) {
			t.Fatalf("set %d id %q, want %q", i, lx.SetID(i), x.SetID(i))
		}
		if !reflect.DeepEqual(lx.PatternsOfSet(x.SetID(i)), x.PatternsOfSet(x.SetID(i))) {
			t.Fatalf("set %d patterns-of mismatch", i)
		}
	}
	for i := range x.Patterns() {
		if lx.PatternID(i) != x.PatternID(i) || lx.PatternSetID(i) != x.PatternSetID(i) {
			t.Fatalf("pattern %d ids mismatch", i)
		}
		if !reflect.DeepEqual(lx.PatternVertexNames(i), x.PatternVertexNames(i)) {
			t.Fatalf("pattern %d vertex names mismatch", i)
		}
		for _, label := range x.PatternVertexNames(i) {
			if !reflect.DeepEqual(lx.PatternsWithVertex(label), x.PatternsWithVertex(label)) {
				t.Fatalf("vertex posting %q mismatch", label)
			}
		}
	}
	for _, s := range x.Sets() {
		for _, name := range s.Names {
			if !reflect.DeepEqual(lx.WithAttr(name), x.WithAttr(name)) {
				t.Fatalf("attr posting %q mismatch", name)
			}
			if !reflect.DeepEqual(lx.Supersets([]string{name}), x.Supersets([]string{name})) {
				t.Fatalf("supersets(%q) mismatch", name)
			}
		}
		if lx.Exact(s.Names) != x.Exact(s.Names) {
			t.Fatalf("exact(%v) mismatch", s.Names)
		}
	}
}

func TestRoundTripBothModes(t *testing.T) {
	g, x := minedPair(t)
	path := writeV3(t, g, x)
	for _, mode := range []snapshot.Mode{snapshot.ModeMmap, snapshot.ModeMaterialize, snapshot.ModeAuto} {
		boot, err := snapshot.Open(path, snapshot.Options{Mode: mode})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		checkPair(t, boot, g, x)
		if err := boot.Close(); err != nil {
			t.Fatalf("mode %v close: %v", mode, err)
		}
	}
}

func TestFullVerifyOnMmap(t *testing.T) {
	g, x := minedPair(t)
	path := writeV3(t, g, x)
	boot, err := snapshot.Open(path, snapshot.Options{Mode: snapshot.ModeMmap, Verify: snapshot.VerifyFull})
	if err != nil {
		t.Fatal(err)
	}
	defer boot.Close()
	checkPair(t, boot, g, x)
}

func TestEncodeDeterministicAndRewriteStable(t *testing.T) {
	g, x := minedPair(t)
	a, err := snapshot.Encode(g, x)
	if err != nil {
		t.Fatal(err)
	}
	b, err := snapshot.Encode(g, x)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two Encodes of the same pair differ")
	}
	// Write → Open → Encode must reproduce the file bit-identically:
	// the format stores the exact in-memory representation, so a load
	// loses nothing.
	path := writeV3(t, g, x)
	boot, err := snapshot.Open(path, snapshot.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer boot.Close()
	c, err := snapshot.Encode(boot.Graph, boot.Index)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, c) {
		t.Fatal("Encode after a load round-trip is not bit-identical")
	}
}

func TestSniff(t *testing.T) {
	g, x := minedPair(t)
	path := writeV3(t, g, x)
	if v, err := snapshot.Sniff(path); err != nil || v != 3 {
		t.Fatalf("Sniff(v3) = %d, %v", v, err)
	}

	v2 := filepath.Join(t.TempDir(), "v2.scpmidx")
	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(v2, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if v, err := snapshot.Sniff(v2); err != nil || v != 2 {
		t.Fatalf("Sniff(v2) = %d, %v", v, err)
	}

	junk := filepath.Join(t.TempDir(), "junk")
	os.WriteFile(junk, []byte("not a snapshot at all"), 0o644)
	if _, err := snapshot.Sniff(junk); !errors.Is(err, snapshot.ErrNotSnapshot) {
		t.Fatalf("Sniff(junk) err = %v, want ErrNotSnapshot", err)
	}
	short := filepath.Join(t.TempDir(), "short")
	os.WriteFile(short, []byte("SC"), 0o644)
	if _, err := snapshot.Sniff(short); !errors.Is(err, snapshot.ErrNotSnapshot) {
		t.Fatalf("Sniff(short) err = %v, want ErrNotSnapshot", err)
	}
}

// patch rewrites one file with fn applied to its bytes.
func patch(t *testing.T, src string, fn func([]byte) []byte) string {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "patched.scpmidx")
	if err := os.WriteFile(out, fn(append([]byte(nil), data...)), 0o644); err != nil {
		t.Fatal(err)
	}
	return out
}

// fixTableCRC recomputes the header/table checksum after a deliberate
// table mutation, so the test reaches the deeper validation layer.
func fixTableCRC(data []byte) {
	const headerSize, entrySize, numKinds = 32, 24, 25
	crc := crc32.NewIEEE()
	crc.Write(data[:24])
	crc.Write(data[headerSize : headerSize+numKinds*entrySize])
	binary.LittleEndian.PutUint32(data[24:28], crc.Sum32())
}

func openBoth(path string, verify snapshot.Verify) []error {
	var errs []error
	for _, mode := range []snapshot.Mode{snapshot.ModeMmap, snapshot.ModeMaterialize} {
		boot, err := snapshot.Open(path, snapshot.Options{Mode: mode, Verify: verify})
		if err == nil {
			boot.Close()
		}
		errs = append(errs, err)
	}
	return errs
}

func TestHostileTruncated(t *testing.T) {
	g, x := minedPair(t)
	path := writeV3(t, g, x)
	data, _ := os.ReadFile(path)
	for _, keep := range []int{4, 31, 200, len(data) / 2, len(data) - 1} {
		cut := patch(t, path, func(b []byte) []byte { return b[:keep] })
		for _, err := range openBoth(cut, snapshot.VerifyAuto) {
			if err == nil {
				t.Fatalf("truncated to %d bytes: open succeeded", keep)
			}
			if !errors.Is(err, snapshot.ErrTruncated) {
				t.Fatalf("truncated to %d bytes: err = %v, want ErrTruncated", keep, err)
			}
		}
	}
}

func TestHostileMisalignedSectionOffset(t *testing.T) {
	g, x := minedPair(t)
	path := writeV3(t, g, x)
	bad := patch(t, path, func(b []byte) []byte {
		// Nudge the adj-off section (table entry 1) off 8-byte alignment.
		base := 32 + 1*24
		off := binary.LittleEndian.Uint64(b[base+8 : base+16])
		binary.LittleEndian.PutUint64(b[base+8:base+16], off+4)
		fixTableCRC(b)
		return b
	})
	for _, err := range openBoth(bad, snapshot.VerifyAuto) {
		if !errors.Is(err, snapshot.ErrMisaligned) {
			t.Fatalf("err = %v, want ErrMisaligned", err)
		}
	}
}

func TestHostileFlippedSectionChecksum(t *testing.T) {
	g, x := minedPair(t)
	path := writeV3(t, g, x)
	bad := patch(t, path, func(b []byte) []byte {
		// Flip one bit inside the adj-arena payload (table entry 2);
		// the table CRC does not cover payloads, so only the section
		// CRC can catch it.
		base := 32 + 2*24
		off := binary.LittleEndian.Uint64(b[base+8 : base+16])
		b[off] ^= 0x40
		return b
	})
	boot, err := snapshot.Open(bad, snapshot.Options{Mode: snapshot.ModeMaterialize})
	if err == nil {
		boot.Close()
		t.Fatal("materialize open of a corrupted section succeeded")
	}
	if !errors.Is(err, snapshot.ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
	if _, err := snapshot.Open(bad, snapshot.Options{Mode: snapshot.ModeMmap, Verify: snapshot.VerifyFull}); !errors.Is(err, snapshot.ErrChecksum) {
		t.Fatalf("mmap full-verify err = %v, want ErrChecksum", err)
	}
}

func TestHostileFlippedTableByte(t *testing.T) {
	g, x := minedPair(t)
	path := writeV3(t, g, x)
	bad := patch(t, path, func(b []byte) []byte {
		b[40] ^= 1 // inside the section table, CRC left stale
		return b
	})
	for _, err := range openBoth(bad, snapshot.VerifyAuto) {
		if !errors.Is(err, snapshot.ErrChecksum) {
			t.Fatalf("err = %v, want ErrChecksum", err)
		}
	}
}

func TestHostileCorruptCounts(t *testing.T) {
	g, x := minedPair(t)
	path := writeV3(t, g, x)
	bad := patch(t, path, func(b []byte) []byte {
		// Inflate the vertex count in the meta section (first section,
		// slot 0) to an absurd value.
		base := 32 + 0*24
		off := binary.LittleEndian.Uint64(b[base+8 : base+16])
		binary.LittleEndian.PutUint64(b[off:off+8], 1<<40)
		return b
	})
	// Table-only verify must still reject it structurally (before any
	// count-sized allocation), without relying on the section CRC.
	for _, err := range openBoth(bad, snapshot.VerifyTable) {
		if !errors.Is(err, snapshot.ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	}
}

func TestHostileVersionAndMagic(t *testing.T) {
	g, x := minedPair(t)
	path := writeV3(t, g, x)
	v9 := patch(t, path, func(b []byte) []byte { b[7] = 9; return b })
	if _, err := snapshot.Open(v9, snapshot.Options{}); !errors.Is(err, snapshot.ErrVersion) {
		t.Fatalf("version 9 err = %v, want ErrVersion", err)
	}
	junk := patch(t, path, func(b []byte) []byte { copy(b, "GARBAGE!"); return b })
	if _, err := snapshot.Open(junk, snapshot.Options{}); !errors.Is(err, snapshot.ErrNotSnapshot) {
		t.Fatalf("bad magic err = %v, want ErrNotSnapshot", err)
	}
}

func TestV2CompatSignal(t *testing.T) {
	_, x := minedPair(t)
	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		t.Fatal(err)
	}
	v2 := filepath.Join(t.TempDir(), "v2.scpmidx")
	if err := os.WriteFile(v2, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := snapshot.Open(v2, snapshot.Options{}); !errors.Is(err, snapshot.ErrV2Snapshot) {
		t.Fatalf("v2 open err = %v, want ErrV2Snapshot", err)
	}
	// The compat path: the same file loads through the v2 loader.
	f, err := os.Open(v2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := scpm.LoadIndex(f); err != nil {
		t.Fatalf("v2 compat load: %v", err)
	}
}

// TestCrashConsistency simulates a writer killed at every interesting
// point: a half-written temp file must never load under the target
// name, and an existing good snapshot must survive a failed rewrite
// attempt untouched.
func TestCrashConsistency(t *testing.T) {
	g, x := minedPair(t)
	dir := t.TempDir()
	target := filepath.Join(dir, "live.scpmidx")
	if err := snapshot.Write(target, g, x); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}

	// A crashed writer leaves only a temp file (Write publishes with
	// rename); whatever prefix it got to, the target stays intact.
	for _, frac := range []float64{0.1, 0.5, 0.9} {
		tmp := filepath.Join(dir, "live.scpmidx.tmp-crashed")
		if err := os.WriteFile(tmp, good[:int(float64(len(good))*frac)], 0o644); err != nil {
			t.Fatal(err)
		}
		now, err := os.ReadFile(target)
		if err != nil || !bytes.Equal(now, good) {
			t.Fatalf("target changed by a crashed temp write (frac %.1f)", frac)
		}
		boot, err := snapshot.Open(target, snapshot.Options{Verify: snapshot.VerifyFull})
		if err != nil {
			t.Fatalf("target unloadable after crashed temp write: %v", err)
		}
		boot.Close()
		// And the partial temp itself is typed-rejected, not a panic.
		if _, err := snapshot.Open(tmp, snapshot.Options{}); err == nil {
			t.Fatalf("half-written file (frac %.1f) loaded successfully", frac)
		}
		os.Remove(tmp)
	}

	// A successful Write leaves no temp files behind.
	if err := snapshot.Write(target, g, x); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "live.scpmidx" {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("directory after Write: %v", names)
	}
}

func TestWriteRejectsMismatchedPair(t *testing.T) {
	_, x := minedPair(t)
	b := scpm.NewBuilder()
	if _, err := b.AddVertex("v0", "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddVertex("v1", "a"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	small, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := snapshot.Write(filepath.Join(t.TempDir(), "bad.scpmidx"), small, x); err == nil {
		t.Fatal("Write accepted an index paired with the wrong graph")
	}
}
