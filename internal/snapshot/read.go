package snapshot

import (
	"fmt"
	"hash/crc32"
	"math"
	"time"

	"github.com/scpm/scpm/internal/bitset"
	"github.com/scpm/scpm/internal/core"
	"github.com/scpm/scpm/internal/graph"
	"github.com/scpm/scpm/internal/index"
	"github.com/scpm/scpm/internal/mmapio"
)

// Mode selects how Open turns the file region into live structures.
type Mode int

const (
	// ModeAuto resolves to ModeMmap (its heap fallback keeps it
	// portable), the millisecond-boot default.
	ModeAuto Mode = iota
	// ModeMmap maps the file (OS mapping when supported, aligned heap
	// read elsewhere) and builds graph and index as zero-copy views
	// over the region: boot cost is O(offset tables), untouched data
	// pages in on demand, and vertex-label structures are lazy.
	ModeMmap
	// ModeMaterialize reads the file onto the heap, verifies every
	// section checksum and builds eager name tables and indexes — the
	// no-page-fault, no-file-dependency boot (costing a full read).
	ModeMaterialize
)

// String returns the -snapshot-mode spelling of m.
func (m Mode) String() string {
	switch m {
	case ModeMmap:
		return "mmap"
	case ModeMaterialize:
		return "materialize"
	default:
		return "auto"
	}
}

// ParseMode parses a -snapshot-mode flag value.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "auto", "":
		return ModeAuto, nil
	case "mmap":
		return ModeMmap, nil
	case "materialize":
		return ModeMaterialize, nil
	}
	return ModeAuto, fmt.Errorf("snapshot: unknown mode %q (want auto, mmap or materialize)", s)
}

// Verify selects how much of the file Open checksums.
type Verify int

const (
	// VerifyAuto: full verification for ModeMaterialize (it reads
	// every byte anyway), table-only for ModeMmap (a full pass would
	// fault the whole file in and defeat lazy paging).
	VerifyAuto Verify = iota
	// VerifyTable checks the header and section-table CRC plus all
	// structural invariants, but not section payload CRCs.
	VerifyTable
	// VerifyFull additionally checks every section CRC and runs the
	// per-element graph scans.
	VerifyFull
)

// Options configures Open.
type Options struct {
	Mode   Mode
	Verify Verify
}

// Boot is one opened v3 snapshot: the graph/index pair plus the
// region backing their views. Keep it (and the region) alive for as
// long as anything derived from the pair is reachable — including
// later generations produced by live updates, which share untouched
// bitsets and label strings with the boot generation by reference.
type Boot struct {
	Graph *graph.Graph
	Index *index.Index

	mapping *mmapio.Mapping
	mode    Mode
}

// Mode returns the resolved boot mode (ModeMmap or ModeMaterialize).
func (b *Boot) Mode() Mode { return b.mode }

// OSMapped reports whether the backing region is a true OS file
// mapping (false for the heap fallback and for materialized boots).
func (b *Boot) OSMapped() bool { return b.mapping.Mapped() }

// MappedBytes returns the size of the backing region.
func (b *Boot) MappedBytes() int64 { return int64(b.mapping.Len()) }

// Close releases the backing region. The graph and index become
// invalid — only call it once nothing can reach them.
func (b *Boot) Close() error { return b.mapping.Close() }

// Open opens a v3 snapshot. A v2 file fails with ErrV2Snapshot so
// callers can fall back to index.Load plus dataset files.
func Open(path string, opts Options) (*Boot, error) {
	if !mmapio.LittleEndianHost() {
		return nil, ErrBigEndian
	}
	mode := opts.Mode
	if mode == ModeAuto {
		mode = ModeMmap
	}
	var (
		m   *mmapio.Mapping
		err error
	)
	if mode == ModeMaterialize {
		m, err = mmapio.OpenHeap(path)
	} else {
		m, err = mmapio.Open(path)
	}
	if err != nil {
		return nil, err
	}
	boot, err := assemble(m, mode, opts.Verify)
	if err != nil {
		m.Close() // no partial mapping leaks on failed opens
		return nil, err
	}
	return boot, nil
}

func assemble(m *mmapio.Mapping, mode Mode, verify Verify) (*Boot, error) {
	full := verify == VerifyFull || (verify == VerifyAuto && mode == ModeMaterialize)
	fp, err := parse(m.Data(), full)
	if err != nil {
		return nil, err
	}
	g, err := buildGraph(fp, mode, full)
	if err != nil {
		return nil, err
	}
	x, err := buildIndex(fp, g, mode)
	if err != nil {
		return nil, err
	}
	return &Boot{Graph: g, Index: x, mapping: m, mode: mode}, nil
}

// fileParts holds one typed view per section, all aliasing the region.
type fileParts struct {
	meta                 []uint64
	adjOff, attrOff      []int64
	adjArena, attrArena  []int32
	members              []uint64
	vnameOffs, anameOffs []int64
	vnameBlob, anameBlob []byte
	setAttrOff           []int64
	setAttrs             []int32
	setNum               []uint64
	setIDs               []byte
	patAttrOff           []int64
	patVertOff           []int64
	patAttrs, patVerts   []int32
	patNum               []uint64
	patIDs, patSetIDs    []byte
	attrPostKeys         []int32
	attrPost             []uint64
	vertPostKeys         []int32
	vertPost             []uint64

	nV, nE, nA, nS, nP, nAK, nVK int
}

// parse validates the header, table and every section's placement and
// exact expected length, then carves the typed views. With
// verifySections it also checks each section's CRC. Nothing beyond
// the meta section is dereferenced before its bounds are proven.
func parse(data []byte, verifySections bool) (*fileParts, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d-byte file", ErrTruncated, len(data))
	}
	if string(data[:7]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrNotSnapshot, data[:7])
	}
	switch data[7] {
	case version:
	case 2:
		return nil, ErrV2Snapshot
	default:
		return nil, fmt.Errorf("%w: version %d", ErrVersion, data[7])
	}
	if size := getU64(data, 8); size != uint64(len(data)) {
		if size > uint64(len(data)) {
			return nil, fmt.Errorf("%w: header claims %d bytes, file has %d", ErrTruncated, size, len(data))
		}
		return nil, fmt.Errorf("%w: header claims %d bytes, file has %d", ErrCorrupt, size, len(data))
	}
	if n := getU64(data, 16); n != numKinds {
		return nil, fmt.Errorf("%w: %d sections, want %d", ErrCorrupt, n, numKinds)
	}
	tableEnd := headerSize + numKinds*entrySize
	if len(data) < tableEnd {
		return nil, fmt.Errorf("%w: file ends inside the section table", ErrTruncated)
	}
	crc := crc32.NewIEEE()
	crc.Write(data[:24])
	crc.Write(data[headerSize:tableEnd])
	if got := getU32(data, 24); got != crc.Sum32() {
		return nil, fmt.Errorf("%w: section table (file %08x, computed %08x)", ErrChecksum, got, crc.Sum32())
	}

	secs := make([][]byte, numKinds+1)
	for i := 0; i < numKinds; i++ {
		base := headerSize + i*entrySize
		kind := getU32(data, base)
		off := getU64(data, base+8)
		length := getU64(data, base+16)
		if kind != uint32(i+1) {
			return nil, fmt.Errorf("%w: section %d has kind %s, want %s", ErrCorrupt, i, sectionName(kind), sectionName(uint32(i+1)))
		}
		if off%8 != 0 {
			return nil, fmt.Errorf("%w: %s at offset %d", ErrMisaligned, sectionName(kind), off)
		}
		if off < uint64(tableEnd) || off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, fmt.Errorf("%w: %s [%d,+%d) exceeds %d-byte file", ErrTruncated, sectionName(kind), off, length, len(data))
		}
		payload := data[off : off+length]
		if verifySections {
			if got, want := getU32(data, base+4), crc32.ChecksumIEEE(payload); got != want {
				return nil, fmt.Errorf("%w: %s (file %08x, computed %08x)", ErrChecksum, sectionName(kind), got, want)
			}
		}
		secs[kind] = payload
	}

	metaSec, err := mmapio.Uint64s(secs[kindMeta])
	if err != nil || len(metaSec) != metaSlots {
		return nil, fmt.Errorf("%w: meta section has %d bytes, want %d slots", ErrCorrupt, len(secs[kindMeta]), metaSlots)
	}
	fp := &fileParts{meta: metaSec}
	// Counts bound every allocation below; no honest count can exceed
	// the file size (each counted element occupies at least one byte of
	// some section), so larger values are corruption, caught before any
	// count-sized allocation.
	counts := []struct {
		slot int
		dst  *int
		name string
	}{
		{metaVertices, &fp.nV, "vertices"},
		{metaEdges, &fp.nE, "edges"},
		{metaAttributes, &fp.nA, "attributes"},
		{metaSets, &fp.nS, "sets"},
		{metaPatterns, &fp.nP, "patterns"},
		{metaAttrPostKeys, &fp.nAK, "attr-post keys"},
		{metaVertPostKeys, &fp.nVK, "vert-post keys"},
	}
	for _, c := range counts {
		v := metaSec[c.slot]
		if v > uint64(len(data)) {
			return nil, fmt.Errorf("%w: %d %s in a %d-byte file", ErrCorrupt, v, c.name, len(data))
		}
		*c.dst = int(v)
	}

	// Exact expected byte length per section, derived from the counts.
	want := [numKinds + 1]uint64{
		kindAdjOff:       uint64(fp.nV+1) * 8,
		kindAdjArena:     uint64(fp.nE) * 2 * 4,
		kindAttrOff:      uint64(fp.nV+1) * 8,
		kindMembers:      uint64(fp.nA) * uint64(wordsPer(fp.nV)) * 8,
		kindVNameOffs:    uint64(fp.nV+1) * 8,
		kindANameOffs:    uint64(fp.nA+1) * 8,
		kindSetAttrOff:   uint64(fp.nS+1) * 8,
		kindSetNumeric:   uint64(fp.nS) * setSlots * 8,
		kindSetIDs:       uint64(fp.nS) * idLen,
		kindPatAttrOff:   uint64(fp.nP+1) * 8,
		kindPatVertOff:   uint64(fp.nP+1) * 8,
		kindPatNumeric:   uint64(fp.nP) * patSlots * 8,
		kindPatIDs:       uint64(fp.nP) * idLen,
		kindPatSetIDs:    uint64(fp.nP) * idLen,
		kindAttrPostKeys: uint64(fp.nAK) * 4,
		kindAttrPost:     uint64(fp.nAK) * uint64(wordsPer(fp.nS)) * 8,
		kindVertPostKeys: uint64(fp.nVK) * 4,
		kindVertPost:     uint64(fp.nVK) * uint64(wordsPer(fp.nP)) * 8,
	}
	freeLength := map[int]bool{
		kindMeta: true, kindAttrArena: true, kindVNameBlob: true,
		kindANameBlob: true, kindSetAttrs: true, kindPatAttrs: true, kindPatVerts: true,
	}
	for kind := 1; kind <= numKinds; kind++ {
		if freeLength[kind] {
			continue
		}
		if got := uint64(len(secs[kind])); got != want[kind] {
			return nil, fmt.Errorf("%w: %s section has %d bytes, want %d", ErrCorrupt, sectionName(uint32(kind)), got, want[kind])
		}
	}

	carve := func(kind int, dst any) {
		if err != nil {
			return
		}
		var e error
		switch p := dst.(type) {
		case *[]int64:
			*p, e = mmapio.Int64s(secs[kind])
		case *[]int32:
			*p, e = mmapio.Int32s(secs[kind])
		case *[]uint64:
			*p, e = mmapio.Uint64s(secs[kind])
		case *[]byte:
			*p = secs[kind]
		}
		if e != nil {
			err = fmt.Errorf("%w: %s: %v", ErrMisaligned, sectionName(uint32(kind)), e)
		}
	}
	err = nil
	carve(kindAdjOff, &fp.adjOff)
	carve(kindAdjArena, &fp.adjArena)
	carve(kindAttrOff, &fp.attrOff)
	carve(kindAttrArena, &fp.attrArena)
	carve(kindMembers, &fp.members)
	carve(kindVNameOffs, &fp.vnameOffs)
	carve(kindVNameBlob, &fp.vnameBlob)
	carve(kindANameOffs, &fp.anameOffs)
	carve(kindANameBlob, &fp.anameBlob)
	carve(kindSetAttrOff, &fp.setAttrOff)
	carve(kindSetAttrs, &fp.setAttrs)
	carve(kindSetNumeric, &fp.setNum)
	carve(kindSetIDs, &fp.setIDs)
	carve(kindPatAttrOff, &fp.patAttrOff)
	carve(kindPatAttrs, &fp.patAttrs)
	carve(kindPatVertOff, &fp.patVertOff)
	carve(kindPatVerts, &fp.patVerts)
	carve(kindPatNumeric, &fp.patNum)
	carve(kindPatIDs, &fp.patIDs)
	carve(kindPatSetIDs, &fp.patSetIDs)
	carve(kindAttrPostKeys, &fp.attrPostKeys)
	carve(kindAttrPost, &fp.attrPost)
	carve(kindVertPostKeys, &fp.vertPostKeys)
	carve(kindVertPost, &fp.vertPost)
	if err != nil {
		return nil, err
	}
	return fp, nil
}

// checkOffsets validates a CSR-style offset table: n+1 entries (known
// by construction here), starting at 0, non-decreasing, ending at
// size.
func checkOffsets(what string, offs []int64, size int) error {
	if len(offs) == 0 || offs[0] != 0 {
		return fmt.Errorf("%w: %s offsets do not start at 0", ErrCorrupt, what)
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] < offs[i-1] {
			return fmt.Errorf("%w: %s offsets decrease at %d", ErrCorrupt, what, i)
		}
	}
	if offs[len(offs)-1] != int64(size) {
		return fmt.Errorf("%w: %s offsets end at %d, payload has %d", ErrCorrupt, what, offs[len(offs)-1], size)
	}
	return nil
}

func buildGraph(fp *fileParts, mode Mode, full bool) (*graph.Graph, error) {
	if err := checkOffsets("vertex-name", fp.vnameOffs, len(fp.vnameBlob)); err != nil {
		return nil, err
	}
	if err := checkOffsets("attr-name", fp.anameOffs, len(fp.anameBlob)); err != nil {
		return nil, err
	}
	memberSets, err := bitset.ViewsOver(fp.nV, fp.nA, fp.members)
	if err != nil {
		return nil, fmt.Errorf("%w: members: %v", ErrCorrupt, err)
	}
	members := make([]*bitset.Set, fp.nA)
	for a := range members {
		members[a] = &memberSets[a]
	}
	attrNames := make([]string, fp.nA)
	for a := range attrNames {
		attrNames[a] = mmapio.ViewString(fp.anameBlob[fp.anameOffs[a]:fp.anameOffs[a+1]])
	}

	gp := graph.Parts{
		AdjOff:           fp.adjOff,
		AdjArena:         fp.adjArena,
		AttrOff:          fp.attrOff,
		AttrArena:        fp.attrArena,
		AttrNames:        attrNames,
		NumVertices:      fp.nV,
		NumEdges:         fp.nE,
		Version:          fp.meta[metaGraphVersion],
		Members:          members,
		ValidateElements: full,
	}
	if mode == ModeMaterialize {
		// Eager labels and label index: the boot pays O(|V|) up front
		// and never lazily builds anything afterwards.
		names := make([]string, fp.nV)
		for v := range names {
			names[v] = mmapio.ViewString(fp.vnameBlob[fp.vnameOffs[v]:fp.vnameOffs[v+1]])
		}
		gp.VertexNames = names
	} else {
		gp.NameBlob = fp.vnameBlob
		gp.NameOffs = fp.vnameOffs
	}
	g, err := graph.FromParts(gp)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return g, nil
}

// buildIndex assembles the index from the carved views. In materialize
// mode the pointer-shaped lookup structures (id maps, trie, per-set
// pattern lists) are built before returning; in mmap mode they are
// deferred to the first lookup that needs one, keeping the open path
// free of any O(sets) map or trie construction.
func buildIndex(fp *fileParts, g *graph.Graph, mode Mode) (*index.Index, error) {
	if err := checkOffsets("set-attr", fp.setAttrOff, len(fp.setAttrs)); err != nil {
		return nil, err
	}
	if err := checkOffsets("pat-attr", fp.patAttrOff, len(fp.patAttrs)); err != nil {
		return nil, err
	}
	if err := checkOffsets("pat-vert", fp.patVertOff, len(fp.patVerts)); err != nil {
		return nil, err
	}

	// Every referenced attribute and vertex id is range-checked up
	// front — corrupt files must fail at open with a typed error — so
	// the row fill below is infallible and can be deferred.
	if err := checkIDs("set attribute", fp.setAttrs, g.NumAttributes()); err != nil {
		return nil, err
	}
	if err := checkIDs("pattern attribute", fp.patAttrs, g.NumAttributes()); err != nil {
		return nil, err
	}
	if err := checkIDs("pattern vertex", fp.patVerts, g.NumVertices()); err != nil {
		return nil, err
	}

	// fill materializes the canonical row tables: name arenas resolved
	// through the graph exactly once (the per-set/pattern slices alias
	// them), struct rows over the numeric views, id strings over the
	// fixed-width id records. It is the O(sets) part of an index boot;
	// materialize mode runs it here, mmap mode on first row access.
	fill := func() index.Rows {
		setNames := attrNames(fp.setAttrs, g)
		patNames := attrNames(fp.patAttrs, g)
		patLabels := make([]string, len(fp.patVerts))
		for k, v := range fp.patVerts {
			patLabels[k] = g.VertexName(v)
		}

		sets := make([]core.AttributeSet, fp.nS)
		setIDs := make([]string, fp.nS)
		for i := range sets {
			lo, hi := fp.setAttrOff[i], fp.setAttrOff[i+1]
			num := fp.setNum[i*setSlots : (i+1)*setSlots]
			sets[i] = core.AttributeSet{
				Attrs:           fp.setAttrs[lo:hi:hi],
				Names:           setNames[lo:hi:hi],
				Support:         int(num[setSupport]),
				Covered:         int(num[setCovered]),
				SampledVertices: int(num[setSampled]),
				Estimated:       num[setEstimated] != 0,
				Epsilon:         math.Float64frombits(num[setEpsilon]),
				ExpEps:          math.Float64frombits(num[setExpEps]),
				Delta:           math.Float64frombits(num[setDelta]),
				EpsilonErr:      math.Float64frombits(num[setEpsErr]),
			}
			setIDs[i] = mmapio.ViewString(fp.setIDs[i*idLen : (i+1)*idLen])
		}

		pats := make([]core.Pattern, fp.nP)
		patVerts := make([][]string, fp.nP)
		patIDs := make([]string, fp.nP)
		patSetIDs := make([]string, fp.nP)
		for i := range pats {
			alo, ahi := fp.patAttrOff[i], fp.patAttrOff[i+1]
			vlo, vhi := fp.patVertOff[i], fp.patVertOff[i+1]
			num := fp.patNum[i*patSlots : (i+1)*patSlots]
			pats[i] = core.Pattern{
				Attrs:    fp.patAttrs[alo:ahi:ahi],
				Names:    patNames[alo:ahi:ahi],
				Vertices: fp.patVerts[vlo:vhi:vhi],
				MinDeg:   int(num[patMinDeg]),
				Edges:    int(num[patEdges]),
			}
			patVerts[i] = patLabels[vlo:vhi:vhi]
			patIDs[i] = mmapio.ViewString(fp.patIDs[i*idLen : (i+1)*idLen])
			patSetIDs[i] = mmapio.ViewString(fp.patSetIDs[i*idLen : (i+1)*idLen])
		}
		return index.Rows{
			Sets: sets, Patterns: pats, PatVerts: patVerts,
			SetIDs: setIDs, PatIDs: patIDs, PatSetIDs: patSetIDs,
		}
	}

	attrPost, err := postingMap(fp.attrPostKeys, fp.attrPost, fp.nS, "attr-post", func(id int32) (string, error) {
		if id < 0 || int(id) >= g.NumAttributes() {
			return "", fmt.Errorf("%w: attr-post key %d out of range [0,%d)", ErrCorrupt, id, g.NumAttributes())
		}
		return g.AttrName(id), nil
	})
	if err != nil {
		return nil, err
	}
	vertPost, err := postingMap(fp.vertPostKeys, fp.vertPost, fp.nP, "vert-post", func(id int32) (string, error) {
		if id < 0 || int(id) >= g.NumVertices() {
			return "", fmt.Errorf("%w: vert-post key %d out of range [0,%d)", ErrCorrupt, id, g.NumVertices())
		}
		return g.VertexName(id), nil
	})
	if err != nil {
		return nil, err
	}

	st := fp.meta
	parts := index.Parts{
		DSVertices:   fp.nV,
		DSEdges:      fp.nE,
		DSAttributes: fp.nA,
		AttrPost:     attrPost,
		VertPost:     vertPost,
		Mining: core.Stats{
			SetsEvaluated:   int64(st[metaSetsEvaluated]),
			SetsEmitted:     int64(st[metaSetsEmitted]),
			PatternsEmitted: int64(st[metaPatternsEmitted]),
			SearchNodes:     int64(st[metaSearchNodes]),
			SampledVertices: int64(st[metaSampledVertices]),
			ReusedSets:      int64(st[metaReusedSets]),
			RecomputedSets:  int64(st[metaRecomputedSets]),
			ReusedVerdicts:  int64(st[metaReusedVerdicts]),
			Duration:        time.Duration(st[metaDuration]),
		},
	}
	if mode == ModeMaterialize {
		r := fill()
		parts.Sets = r.Sets
		parts.Patterns = r.Patterns
		parts.PatVerts = r.PatVerts
		parts.SetIDs = r.SetIDs
		parts.PatIDs = r.PatIDs
		parts.PatSetIDs = r.PatSetIDs
		parts.EagerDerived = true
	} else {
		parts.Rows = fill
		parts.NSets = fp.nS
		parts.NPatterns = fp.nP
	}
	x, err := index.FromParts(parts)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return x, nil
}

// checkIDs rejects any id outside [0,n) — the eager validation pass
// that makes the deferred row fill infallible.
func checkIDs(what string, ids []int32, n int) error {
	for _, v := range ids {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("%w: %s id %d out of range [0,%d)", ErrCorrupt, what, v, n)
		}
	}
	return nil
}

// attrNames resolves pre-validated attribute ids into one shared
// string arena.
func attrNames(ids []int32, g *graph.Graph) []string {
	out := make([]string, len(ids))
	for k, a := range ids {
		out[k] = g.AttrName(a)
	}
	return out
}

// postingMap rebuilds a posting map from its sorted key ids and bitset
// arena. Keys must be strictly ascending — that is what makes the
// Save→Load→Save cycle bit-identical.
func postingMap(keys []int32, arena []uint64, capacity int, what string, name func(int32) (string, error)) (map[string]*bitset.Set, error) {
	sets, err := bitset.ViewsOver(capacity, len(keys), arena)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, what, err)
	}
	post := make(map[string]*bitset.Set, len(keys))
	for i, id := range keys {
		if i > 0 && id <= keys[i-1] {
			return nil, fmt.Errorf("%w: %s keys not strictly ascending at %d", ErrCorrupt, what, i)
		}
		n, err := name(id)
		if err != nil {
			return nil, err
		}
		post[n] = &sets[i]
	}
	return post, nil
}
