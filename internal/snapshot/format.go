// Package snapshot implements the v3 snapshot format: a fixed-width,
// little-endian, section-offset-table layout that stores a Graph and
// its Index in their exact in-memory representation, so a server boots
// by mapping the file and wrapping typed views over it instead of
// decoding (see docs/FILE_FORMATS.md for the byte-level spec).
//
// A v3 file is self-contained — unlike the v2 index-only format it
// embeds the graph's CSR arenas, name tables and vertical index
// alongside the index tables, stable ids and inverted postings — and
// every multi-byte value is little-endian at an 8-byte-aligned offset,
// which is what makes zero-copy []uint64/[]int64/[]int32
// reinterpretation (internal/mmapio) sound on little-endian hosts.
//
// Layout:
//
//	[0,8)    magic "SCPMIDX" + version byte 3
//	[8,16)   u64 file size (self-check against truncation)
//	[16,24)  u64 section count
//	[24,28)  u32 CRC-32 (IEEE) of bytes [0,24) ++ the section table
//	[28,32)  zero padding
//	[32,…)   section table: per section u32 kind, u32 CRC-32 of the
//	         section payload, u64 offset, u64 length (24 bytes/entry)
//	…        section payloads, each at an 8-byte-aligned offset,
//	         zero-padded up to the next section
//
// Every section's expected length is derivable from the meta section's
// counts, so structural validation is exact and runs before any
// payload byte is trusted. The table CRC is always verified on open;
// per-section CRCs are verified on the materialize path (which reads
// every byte anyway) and on demand for mapped boots, where a full
// verify would fault the whole file in and defeat lazy paging.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

const (
	magic   = "SCPMIDX"
	version = 3

	headerSize = 32
	entrySize  = 24
)

// Section kinds, in file order. Every kind appears exactly once.
const (
	kindMeta         = 1 + iota // []u64 counters (see the meta* consts)
	kindAdjOff                  // []int64, |V|+1: adjacency CSR offsets
	kindAdjArena                // []int32, 2|E|: adjacency CSR arena
	kindAttrOff                 // []int64, |V|+1: attribute CSR offsets
	kindAttrArena               // []int32: attribute CSR arena
	kindMembers                 // []u64, |A|·⌈|V|/64⌉: vertical-index bitset arena
	kindVNameOffs               // []int64, |V|+1: vertex-label blob offsets
	kindVNameBlob               // bytes: vertex labels back to back
	kindANameOffs               // []int64, |A|+1: attribute-name blob offsets
	kindANameBlob               // bytes: attribute names back to back
	kindSetAttrOff              // []int64, S+1: per-set attribute-list offsets
	kindSetAttrs                // []int32: set attribute ids back to back
	kindSetNumeric              // []u64, S·8: per-set scalars (see setSlots)
	kindSetIDs                  // bytes, S·16: stable set ids (16 hex chars each)
	kindPatAttrOff              // []int64, P+1: per-pattern attribute-list offsets
	kindPatAttrs                // []int32: pattern attribute ids back to back
	kindPatVertOff              // []int64, P+1: per-pattern vertex-list offsets
	kindPatVerts                // []int32: pattern vertex ids back to back
	kindPatNumeric              // []u64, P·2: per-pattern scalars (minDeg, edges)
	kindPatIDs                  // bytes, P·16: stable pattern ids
	kindPatSetIDs               // bytes, P·16: owning-set ids per pattern
	kindAttrPostKeys            // []int32: attribute ids keying attrPost, ascending
	kindAttrPost                // []u64: attrPost bitset arena, capacity S per key
	kindVertPostKeys            // []int32: vertex ids keying vertPost, ascending
	kindVertPost                // []u64: vertPost bitset arena, capacity P per key
	numKinds         = iota
)

// Meta section slot indices (each slot is one u64).
const (
	metaVertices = iota
	metaEdges
	metaAttributes
	metaGraphVersion
	metaSets
	metaPatterns
	metaAttrPostKeys
	metaVertPostKeys
	metaSetsEvaluated
	metaSetsEmitted
	metaPatternsEmitted
	metaSearchNodes
	metaSampledVertices
	metaReusedSets
	metaRecomputedSets
	metaReusedVerdicts
	metaDuration
	metaSlots
)

// Per-set slots in the setNumeric section; float-valued slots hold
// math.Float64bits patterns.
const (
	setSupport = iota
	setCovered
	setSampled
	setEstimated // 0 or 1
	setEpsilon   // float bits
	setExpEps    // float bits
	setDelta     // float bits
	setEpsErr    // float bits
	setSlots
)

const (
	patMinDeg = iota
	patEdges
	patSlots
)

// idLen is the byte length of every stable id (16 lowercase hex chars
// of an FNV-1a 64 hash); the id sections are fixed-width records of it.
const idLen = 16

// Typed open failures. Callers branch on ErrV2Snapshot (fall back to
// the v2 loader) and treat everything else as a bad file.
var (
	// ErrNotSnapshot reports a file without the snapshot magic.
	ErrNotSnapshot = errors.New("snapshot: not an scpm snapshot")
	// ErrVersion reports a snapshot version this build cannot read.
	ErrVersion = errors.New("snapshot: unsupported version")
	// ErrV2Snapshot reports a valid v2 (index-only) snapshot: load it
	// with index.Load and pair it with the dataset files instead.
	ErrV2Snapshot = errors.New("snapshot: v2 index-only format")
	// ErrTruncated reports a file shorter than its header claims.
	ErrTruncated = errors.New("snapshot: truncated")
	// ErrMisaligned reports a section at a non-8-byte-aligned offset or
	// with a length that breaks its element width.
	ErrMisaligned = errors.New("snapshot: misaligned section")
	// ErrChecksum reports a table or section CRC mismatch.
	ErrChecksum = errors.New("snapshot: checksum mismatch")
	// ErrCorrupt reports a structurally invalid file (bad counts,
	// overlapping or missing sections, broken offset tables, …).
	ErrCorrupt = errors.New("snapshot: corrupt")
	// ErrBigEndian reports a big-endian host: v3 views reinterpret
	// little-endian file bytes in place and have no byte-swapping
	// decode path.
	ErrBigEndian = errors.New("snapshot: big-endian hosts are unsupported")
)

// Sniff reads just the 8-byte magic of path and returns the snapshot
// version (2 or 3). It distinguishes "old format" from "garbage"
// without parsing anything else, so boot code can pick a loader.
func Sniff(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var head [8]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return 0, fmt.Errorf("%w: %d-byte file", ErrNotSnapshot, fileSize(f))
	}
	if string(head[:7]) != magic {
		return 0, fmt.Errorf("%w: bad magic %q", ErrNotSnapshot, head[:7])
	}
	v := int(head[7])
	if v != 2 && v != version {
		return 0, fmt.Errorf("%w: version %d", ErrVersion, v)
	}
	return v, nil
}

func fileSize(f *os.File) int64 {
	st, err := f.Stat()
	if err != nil {
		return -1
	}
	return st.Size()
}

// sectionNames maps kinds to spec names for error messages.
var sectionNames = map[uint32]string{
	kindMeta: "meta", kindAdjOff: "adj-off", kindAdjArena: "adj-arena",
	kindAttrOff: "attr-off", kindAttrArena: "attr-arena", kindMembers: "members",
	kindVNameOffs: "vname-offs", kindVNameBlob: "vname-blob",
	kindANameOffs: "aname-offs", kindANameBlob: "aname-blob",
	kindSetAttrOff: "set-attr-off", kindSetAttrs: "set-attrs",
	kindSetNumeric: "set-numeric", kindSetIDs: "set-ids",
	kindPatAttrOff: "pat-attr-off", kindPatAttrs: "pat-attrs",
	kindPatVertOff: "pat-vert-off", kindPatVerts: "pat-verts",
	kindPatNumeric: "pat-numeric", kindPatIDs: "pat-ids", kindPatSetIDs: "pat-set-ids",
	kindAttrPostKeys: "attr-post-keys", kindAttrPost: "attr-post",
	kindVertPostKeys: "vert-post-keys", kindVertPost: "vert-post",
}

func sectionName(kind uint32) string {
	if n, ok := sectionNames[kind]; ok {
		return n
	}
	return fmt.Sprintf("kind-%d", kind)
}

// wordsPer returns the bitset stride ⌈n/64⌉ shared with
// bitset.ViewsOver.
func wordsPer(n int) int { return (n + 63) / 64 }

func putU64(b []byte, off int, v uint64) { binary.LittleEndian.PutUint64(b[off:off+8], v) }
func getU64(b []byte, off int) uint64    { return binary.LittleEndian.Uint64(b[off : off+8]) }
func putU32(b []byte, off int, v uint32) { binary.LittleEndian.PutUint32(b[off:off+4], v) }
func getU32(b []byte, off int) uint32    { return binary.LittleEndian.Uint32(b[off : off+4]) }
