package snapshot

import (
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"github.com/scpm/scpm/internal/bitset"
	"github.com/scpm/scpm/internal/graph"
	"github.com/scpm/scpm/internal/index"
)

// Write atomically writes a v3 snapshot of the graph/index pair to
// path: the bytes go to a temp file in the same directory, are synced,
// and replace path with one rename — a crashed writer can leave a
// stray temp file but never a partial snapshot under the target name.
// The pair must be consistent: the index must have been built from (or
// rebuilt against) exactly this graph.
func Write(path string, g *graph.Graph, x *index.Index) error {
	data, err := Encode(g, x)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// WriteTo writes the encoded snapshot to w (non-atomically; prefer
// Write for files).
func WriteTo(w io.Writer, g *graph.Graph, x *index.Index) error {
	data, err := Encode(g, x)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// Encode serializes the pair into one v3 snapshot byte image. The
// encoding is deterministic: the same pair always produces the same
// bytes.
func Encode(g *graph.Graph, x *index.Index) ([]byte, error) {
	secs, err := buildSections(g, x)
	if err != nil {
		return nil, fmt.Errorf("snapshot: encoding: %w", err)
	}

	// Lay out: header, table, 8-aligned payloads.
	tableLen := numKinds * entrySize
	off := int64(headerSize + tableLen)
	offsets := make([]int64, numKinds)
	for i, s := range secs {
		off = (off + 7) &^ 7
		offsets[i] = off
		off += int64(len(s.payload))
	}
	total := (off + 7) &^ 7

	buf := make([]byte, total)
	copy(buf, magic)
	buf[7] = version
	putU64(buf, 8, uint64(total))
	putU64(buf, 16, numKinds)
	for i, s := range secs {
		base := headerSize + i*entrySize
		putU32(buf, base, s.kind)
		putU32(buf, base+4, crc32.ChecksumIEEE(s.payload))
		putU64(buf, base+8, uint64(offsets[i]))
		putU64(buf, base+16, uint64(len(s.payload)))
		copy(buf[offsets[i]:], s.payload)
	}
	// Table CRC covers the 24-byte prefix plus the whole table; the CRC
	// field itself and its padding sit outside the covered ranges.
	crc := crc32.NewIEEE()
	crc.Write(buf[:24])
	crc.Write(buf[headerSize : headerSize+tableLen])
	putU32(buf, 24, crc.Sum32())
	return buf, nil
}

type section struct {
	kind    uint32
	payload []byte
}

// buildSections renders every section payload in kind order, verifying
// the graph/index pairing invariants the format relies on (set and
// pattern names resolve through the graph's tables, ids are fixed
// width) so a mismatched pair fails loudly at write time instead of
// producing a snapshot that lies.
func buildSections(g *graph.Graph, x *index.Index) ([]section, error) {
	nV, nE, nA := g.NumVertices(), g.NumEdges(), g.NumAttributes()
	if dv, de, da := x.DatasetShape(); dv != nV || de != nE || da != nA {
		return nil, fmt.Errorf("index dataset shape (%d,%d,%d) does not match graph (%d,%d,%d)",
			dv, de, da, nV, nE, nA)
	}
	sets, pats := x.Sets(), x.Patterns()
	st := x.MiningStats()

	meta := make([]uint64, metaSlots)
	meta[metaVertices] = uint64(nV)
	meta[metaEdges] = uint64(nE)
	meta[metaAttributes] = uint64(nA)
	meta[metaGraphVersion] = g.Version()
	meta[metaSets] = uint64(len(sets))
	meta[metaPatterns] = uint64(len(pats))
	meta[metaSetsEvaluated] = uint64(st.SetsEvaluated)
	meta[metaSetsEmitted] = uint64(st.SetsEmitted)
	meta[metaPatternsEmitted] = uint64(st.PatternsEmitted)
	meta[metaSearchNodes] = uint64(st.SearchNodes)
	meta[metaSampledVertices] = uint64(st.SampledVertices)
	meta[metaReusedSets] = uint64(st.ReusedSets)
	meta[metaRecomputedSets] = uint64(st.RecomputedSets)
	meta[metaReusedVerdicts] = uint64(st.ReusedVerdicts)
	meta[metaDuration] = uint64(st.Duration)

	adjOff, adjArena := g.CSR()
	attrOff, attrArena := g.AttrCSR()

	memberWords := make([]uint64, 0, nA*wordsPer(nV))
	for a := int32(0); int(a) < nA; a++ {
		w := g.AttrMembers(a).Words()
		if len(w) != wordsPer(nV) {
			return nil, fmt.Errorf("member set %d has %d words, want %d", a, len(w), wordsPer(nV))
		}
		memberWords = append(memberWords, w...)
	}

	vnameOffs, vnameBlob := stringTable(nV, func(i int) string { return g.VertexName(int32(i)) })
	anameOffs, anameBlob := stringTable(nA, func(i int) string { return g.AttrName(int32(i)) })

	// Set tables. Names must round-trip through the graph's attribute
	// table — the format stores only ids and re-derives names on load.
	setAttrOff := make([]int64, len(sets)+1)
	var setAttrs []int32
	setNum := make([]uint64, 0, len(sets)*setSlots)
	setIDs := make([]byte, 0, len(sets)*idLen)
	for i := range sets {
		s := &sets[i]
		if len(s.Names) != len(s.Attrs) {
			return nil, fmt.Errorf("set %d has %d names for %d attrs", i, len(s.Names), len(s.Attrs))
		}
		for j, a := range s.Attrs {
			if a < 0 || int(a) >= nA || g.AttrName(a) != s.Names[j] {
				return nil, fmt.Errorf("set %d name %q does not resolve through graph attribute %d", i, s.Names[j], a)
			}
		}
		setAttrs = append(setAttrs, s.Attrs...)
		setAttrOff[i+1] = int64(len(setAttrs))
		setNum = append(setNum,
			uint64(s.Support), uint64(s.Covered), uint64(s.SampledVertices), boolU64(s.Estimated),
			math.Float64bits(s.Epsilon), math.Float64bits(s.ExpEps),
			math.Float64bits(s.Delta), math.Float64bits(s.EpsilonErr))
		id := x.SetID(i)
		if len(id) != idLen {
			return nil, fmt.Errorf("set %d id %q is not %d bytes", i, id, idLen)
		}
		setIDs = append(setIDs, id...)
	}

	patAttrOff := make([]int64, len(pats)+1)
	patVertOff := make([]int64, len(pats)+1)
	var patAttrs, patVerts []int32
	patNum := make([]uint64, 0, len(pats)*patSlots)
	patIDs := make([]byte, 0, len(pats)*idLen)
	patSetIDs := make([]byte, 0, len(pats)*idLen)
	for i := range pats {
		p := &pats[i]
		if len(p.Names) != len(p.Attrs) {
			return nil, fmt.Errorf("pattern %d has %d names for %d attrs", i, len(p.Names), len(p.Attrs))
		}
		for j, a := range p.Attrs {
			if a < 0 || int(a) >= nA || g.AttrName(a) != p.Names[j] {
				return nil, fmt.Errorf("pattern %d name %q does not resolve through graph attribute %d", i, p.Names[j], a)
			}
		}
		labels := x.PatternVertexNames(i)
		if len(labels) != len(p.Vertices) {
			return nil, fmt.Errorf("pattern %d has %d labels for %d vertices", i, len(labels), len(p.Vertices))
		}
		for j, v := range p.Vertices {
			if v < 0 || int(v) >= nV || g.VertexName(v) != labels[j] {
				return nil, fmt.Errorf("pattern %d label %q does not resolve through graph vertex %d", i, labels[j], v)
			}
		}
		patAttrs = append(patAttrs, p.Attrs...)
		patAttrOff[i+1] = int64(len(patAttrs))
		patVerts = append(patVerts, p.Vertices...)
		patVertOff[i+1] = int64(len(patVerts))
		patNum = append(patNum, uint64(p.MinDeg), uint64(p.Edges))
		id, sid := x.PatternID(i), x.PatternSetID(i)
		if len(id) != idLen || len(sid) != idLen {
			return nil, fmt.Errorf("pattern %d ids %q/%q are not %d bytes", i, id, sid, idLen)
		}
		patIDs = append(patIDs, id...)
		patSetIDs = append(patSetIDs, sid...)
	}

	// Postings, keyed by graph id in ascending order for determinism.
	attrPost, vertPost := x.PostingTables()
	attrKeys, attrPostArena, err := postingArena(attrPost, len(sets), "attribute", func(name string) (int32, bool) {
		return g.AttrID(name)
	})
	if err != nil {
		return nil, err
	}
	vertKeys, vertPostArena, err := postingArena(vertPost, len(pats), "vertex", func(label string) (int32, bool) {
		return g.VertexID(label)
	})
	if err != nil {
		return nil, err
	}
	meta[metaAttrPostKeys] = uint64(len(attrKeys))
	meta[metaVertPostKeys] = uint64(len(vertKeys))

	return []section{
		{kindMeta, u64Bytes(meta)},
		{kindAdjOff, i64Bytes(adjOff)},
		{kindAdjArena, i32Bytes(adjArena)},
		{kindAttrOff, i64Bytes(attrOff)},
		{kindAttrArena, i32Bytes(attrArena)},
		{kindMembers, u64Bytes(memberWords)},
		{kindVNameOffs, i64Bytes(vnameOffs)},
		{kindVNameBlob, vnameBlob},
		{kindANameOffs, i64Bytes(anameOffs)},
		{kindANameBlob, anameBlob},
		{kindSetAttrOff, i64Bytes(setAttrOff)},
		{kindSetAttrs, i32Bytes(setAttrs)},
		{kindSetNumeric, u64Bytes(setNum)},
		{kindSetIDs, setIDs},
		{kindPatAttrOff, i64Bytes(patAttrOff)},
		{kindPatAttrs, i32Bytes(patAttrs)},
		{kindPatVertOff, i64Bytes(patVertOff)},
		{kindPatVerts, i32Bytes(patVerts)},
		{kindPatNumeric, u64Bytes(patNum)},
		{kindPatIDs, patIDs},
		{kindPatSetIDs, patSetIDs},
		{kindAttrPostKeys, i32Bytes(attrKeys)},
		{kindAttrPost, u64Bytes(attrPostArena)},
		{kindVertPostKeys, i32Bytes(vertKeys)},
		{kindVertPost, u64Bytes(vertPostArena)},
	}, nil
}

// postingArena flattens a posting map into (sorted key ids, bitset
// arena with stride ⌈capacity/64⌉), resolving each key string to its
// graph id. Load rebuilds the map by resolving ids back to names, so
// keys that do not resolve make the write fail.
func postingArena(post map[string]*bitset.Set, capacity int, what string, resolve func(string) (int32, bool)) ([]int32, []uint64, error) {
	type keyed struct {
		id   int32
		name string
	}
	keys := make([]keyed, 0, len(post))
	for name := range post {
		id, ok := resolve(name)
		if !ok {
			return nil, nil, fmt.Errorf("%s posting key %q does not resolve through the graph", what, name)
		}
		keys = append(keys, keyed{id, name})
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].id < keys[j].id })
	stride := wordsPer(capacity)
	ids := make([]int32, len(keys))
	arena := make([]uint64, 0, len(keys)*stride)
	for i, k := range keys {
		ids[i] = k.id
		w := post[k.name].Words()
		if len(w) != stride {
			return nil, nil, fmt.Errorf("%s posting %q has %d words, want %d", what, k.name, len(w), stride)
		}
		arena = append(arena, w...)
	}
	return ids, arena, nil
}

// stringTable renders n strings as (offsets, blob): string i occupies
// blob[offsets[i]:offsets[i+1]].
func stringTable(n int, get func(int) string) ([]int64, []byte) {
	offs := make([]int64, n+1)
	var size int64
	for i := 0; i < n; i++ {
		size += int64(len(get(i)))
	}
	blob := make([]byte, 0, size)
	for i := 0; i < n; i++ {
		blob = append(blob, get(i)...)
		offs[i+1] = int64(len(blob))
	}
	return offs, blob
}

func boolU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// The little-endian byte renderings below are explicit loops rather
// than views so the writer is portable to big-endian hosts (readers
// are not — see ErrBigEndian).

func u64Bytes(v []uint64) []byte {
	out := make([]byte, len(v)*8)
	for i, x := range v {
		putU64(out, i*8, x)
	}
	return out
}

func i64Bytes(v []int64) []byte {
	out := make([]byte, len(v)*8)
	for i, x := range v {
		putU64(out, i*8, uint64(x))
	}
	return out
}

func i32Bytes(v []int32) []byte {
	out := make([]byte, len(v)*4)
	for i, x := range v {
		putU32(out, i*4, uint32(x))
	}
	return out
}
