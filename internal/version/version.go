// Package version renders the build identity reported by the -version
// flag of the scpm binaries, backed by runtime/debug.ReadBuildInfo so
// it works for plain `go build`/`go install` without ldflags.
package version

import (
	"fmt"
	"runtime/debug"
	"strings"
)

// String renders a one-line build description for the named binary:
// module version (or "devel"), VCS revision and dirty marker when the
// build recorded them, and the Go toolchain version.
func String(binary string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s ", binary)
	info, ok := debug.ReadBuildInfo()
	if !ok {
		sb.WriteString("(unknown build)")
		return sb.String()
	}
	ver := info.Main.Version
	if ver == "" || ver == "(devel)" {
		ver = "devel"
	}
	sb.WriteString(ver)
	var rev, dirty string
	for _, kv := range info.Settings {
		switch kv.Key {
		case "vcs.revision":
			rev = kv.Value
		case "vcs.modified":
			if kv.Value == "true" {
				dirty = "-dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		fmt.Fprintf(&sb, " (%s%s)", rev, dirty)
	}
	fmt.Fprintf(&sb, " %s", info.GoVersion)
	return sb.String()
}
