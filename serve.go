package scpm

import (
	"context"
	"io"
	"log/slog"
	"net"
	"net/http"

	"github.com/scpm/scpm/internal/index"
	"github.com/scpm/scpm/internal/obs"
	"github.com/scpm/scpm/internal/server"
)

// Index is a read-optimized, concurrently-queryable view of one mining
// run's output: stable-id lookups, an attribute-set trie
// (exact/subset/superset), inverted postings (attribute → sets, vertex
// → patterns), top-k rankings and a versioned binary snapshot format.
// Build one with NewIndex, or restore one with LoadIndex; all methods
// are safe for concurrent use.
type Index = index.Index

// IndexStats summarizes an Index's shape (set/pattern/attribute counts
// plus the producing run's mining counters).
type IndexStats = index.Stats

// NewIndex builds an Index from a mining result. g must be the graph
// the result was mined from; it resolves pattern vertex ids to labels
// so the index and its snapshots are self-contained.
func NewIndex(res *Result, g *Graph) *Index { return index.Build(res, g) }

// LoadIndex restores an Index from a snapshot written by Index.Save,
// verifying its magic, version and checksum. The snapshot is
// self-contained — no graph is needed to serve lookups from it.
func LoadIndex(r io.Reader) (*Index, error) { return index.Load(r) }

// LiveIndex is an atomically swappable handle on an immutable Index —
// the copy-on-write primitive behind the live-update path. Readers
// call Index() and query the snapshot they got; a concurrent Swap
// (typically of an Index.Rebuild over a Remine result) never blocks
// them. scpm-serve wires this up automatically; embedders serving an
// index in-process use it directly.
type LiveIndex = index.Live

// NewLiveIndex wraps an index in a live handle.
func NewLiveIndex(x *Index) *LiveIndex { return index.NewLive(x) }

// SwapEvent describes one live-update generation swap: the new graph
// version, the incremental mining result and the rebuilt index that
// now serve reads. It is the payload of ServerConfig.OnSwap — the
// snapshot write-behind hook.
type SwapEvent = server.SwapEvent

// ServerConfig configures NewServerHandler beyond its required
// arguments.
type ServerConfig struct {
	// CacheSize bounds the /epsilon LRU cache (entries); 0 means the
	// server default (1024).
	CacheSize int
	// Logger, when set, receives one structured key=value line per
	// request plus remine lifecycle events.
	Logger *slog.Logger
	// Metrics, when set, is the registry the handler's instruments
	// register on and its GET /metrics endpoint serves. Nil means a
	// private registry — the endpoint still works, it just only sees
	// this handler's series. Share one registry (NewMetricsRegistry)
	// across layers to scrape them together.
	Metrics *MetricsRegistry
	// Result, when set together with a non-nil graph, enables the live
	// update path: POST /updates applies NDJSON graph operations and a
	// background incremental remine (Miner.Remine semantics) republishes
	// the index with an atomic swap readers never block on. Result must
	// be the result the index was built from; mine it with
	// WithLiveUpdates so the first remine is already incremental.
	Result *Result
	// OnSwap, when set, is called after every background remine
	// publishes a new generation — write the snapshot there to keep it
	// warm behind the served data.
	OnSwap func(SwapEvent)
}

// MetricsRegistry collects Prometheus-style metric families (counters,
// gauges, histograms) and renders them in the text exposition format on
// GET /metrics. Every server handler mounts one (private unless
// ServerConfig.Metrics shares it); embedders can register their own
// series on it. All methods are safe for concurrent use with hot-path
// atomic updates.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry builds an empty metrics registry and pre-registers
// the process runtime gauges (goroutines, heap, GC, uptime).
func NewMetricsRegistry() *MetricsRegistry {
	reg := obs.NewRegistry()
	obs.AddRuntimeMetrics(reg)
	return reg
}

// NewServerHandler builds the HTTP query layer over an index: JSON and
// NDJSON endpoints for sets, patterns and vertices, plus on-demand
// /epsilon answers for attribute sets the mining run never emitted,
// computed by p's ε-estimation layer (exact, or sampled under
// WithEpsilonSampling-style parameters) through a singleflight-
// deduplicated LRU cache. g may be nil when only indexed lookups are
// needed (e.g. serving a snapshot without the dataset); /epsilon then
// answers indexed sets only. With ServerConfig.Result set the handler
// additionally accepts live updates (POST /updates, GET /version). See
// docs/FILE_FORMATS.md for the endpoint reference.
func NewServerHandler(idx *Index, g *Graph, p Params, cfg ServerConfig) (http.Handler, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	sc := server.Config{
		Index:     idx,
		CacheSize: cfg.CacheSize,
		Logger:    cfg.Logger,
		Metrics:   cfg.Metrics,
		OnSwap:    cfg.OnSwap,
	}
	if g != nil {
		sc.Graph = g
		sc.Estimator = p.NewEstimator()
		sc.Model = p.NewModel(g)
		if cfg.Result != nil {
			sc.Result = cfg.Result
			sc.Params = &p
		}
	}
	return server.New(sc)
}

// Serve runs h on addr until ctx is canceled, then shuts down
// gracefully (in-flight requests get a bounded grace period; a clean
// shutdown returns nil).
func Serve(ctx context.Context, addr string, h http.Handler) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return server.Serve(ctx, ln, h)
}
