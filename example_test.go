package scpm_test

import (
	"context"
	"fmt"
	"strings"

	scpm "github.com/scpm/scpm"
)

// ExampleMiner reproduces the attribute sets of the paper's worked
// example (Figure 1, §2.1.2) with the batch consumption mode.
func ExampleMiner() {
	g := scpm.PaperExample()
	m, err := scpm.NewMiner(
		scpm.WithSigmaMin(3),
		scpm.WithGamma(0.6),
		scpm.WithMinSize(4),
		scpm.WithEpsMin(0.5),
		scpm.WithTopK(10),
	)
	if err != nil {
		panic(err)
	}
	res, err := m.Mine(context.Background(), g)
	if err != nil {
		panic(err)
	}
	for _, s := range res.Sets {
		fmt.Printf("{%s} σ=%d ε=%.2f\n", strings.Join(s.Names, ","), s.Support, s.Epsilon)
	}
	// Output:
	// {A} σ=11 ε=0.82
	// {B} σ=6 ε=1.00
	// {A,B} σ=6 ε=1.00
}

// ExampleMiner_Mine lists the structural correlation patterns of
// Table 1.
func ExampleMiner_Mine() {
	g := scpm.PaperExample()
	m, _ := scpm.NewMiner(
		scpm.WithSigmaMin(3), scpm.WithGamma(0.6), scpm.WithMinSize(4),
		scpm.WithEpsMin(0.5), scpm.WithTopK(10),
	)
	res, _ := m.Mine(context.Background(), g)
	for _, p := range res.Patterns {
		fmt.Printf("({%s},{%s}) size=%d γ=%.2f\n",
			strings.Join(p.Names, ","),
			strings.Join(p.VertexNames(g), ","),
			p.Size(), p.Density())
	}
	// Output:
	// ({A},{6,7,8,9,10,11}) size=6 γ=0.60
	// ({A},{3,4,5,6}) size=4 γ=1.00
	// ({A},{3,4,6,7}) size=4 γ=0.67
	// ({A},{3,5,6,7}) size=4 γ=0.67
	// ({A},{3,6,7,8}) size=4 γ=0.67
	// ({B},{6,7,8,9,10,11}) size=6 γ=0.60
	// ({A,B},{6,7,8,9,10,11}) size=6 γ=0.60
}

// ExampleMiner_Stream pushes results to a Sink as the search finds
// them: each qualifying set arrives as one burst — OnAttributeSet, then
// its patterns.
func ExampleMiner_Stream() {
	g := scpm.PaperExample()
	m, _ := scpm.NewMiner(
		scpm.WithSigmaMin(3), scpm.WithGamma(0.6), scpm.WithMinSize(4),
		scpm.WithEpsMin(0.5), scpm.WithTopK(1),
	)
	err := m.Stream(context.Background(), g, scpm.SinkFuncs{
		AttributeSet: func(s scpm.AttributeSet) {
			fmt.Printf("set {%s} ε=%.2f\n", strings.Join(s.Names, ","), s.Epsilon)
		},
		Pattern: func(p scpm.Pattern) {
			fmt.Printf("  best pattern: %d vertices\n", p.Size())
		},
	})
	if err != nil {
		panic(err)
	}
	// Output:
	// set {A} ε=0.82
	//   best pattern: 6 vertices
	// set {B} ε=1.00
	//   best pattern: 6 vertices
	// set {A,B} ε=1.00
	//   best pattern: 6 vertices
}

// ExampleMiner_Sets consumes mining results lazily with a range-over-
// func iterator; breaking out of the loop cancels the search.
func ExampleMiner_Sets() {
	g := scpm.PaperExample()
	m, _ := scpm.NewMiner(
		scpm.WithSigmaMin(3), scpm.WithGamma(0.6), scpm.WithMinSize(4),
		scpm.WithEpsMin(0.5),
	)
	for s, err := range m.Sets(context.Background(), g) {
		if err != nil {
			panic(err)
		}
		fmt.Printf("{%s} σ=%d\n", strings.Join(s.Names, ","), s.Support)
	}
	// Output:
	// {A} σ=11
	// {B} σ=6
	// {A,B} σ=6
}

// ExampleNewBuilder shows incremental graph construction.
func ExampleNewBuilder() {
	b := scpm.NewBuilder()
	b.AddVertex("alice", "databases", "go")
	b.AddVertex("bob", "databases")
	b.AddEdgeByName("alice", "bob")
	g, _ := b.Build()
	fmt.Println(g.NumVertices(), g.NumEdges(), g.NumAttributes())
	// Output: 2 1 2
}

// ExampleTopSets ranks mined attribute sets the way the paper's
// case-study tables do.
func ExampleTopSets() {
	g := scpm.PaperExample()
	m, _ := scpm.NewMiner(scpm.WithSigmaMin(3), scpm.WithGamma(0.6), scpm.WithMinSize(4))
	res, _ := m.Mine(context.Background(), g)
	top := scpm.TopSets(res.Sets, scpm.ByEpsilon, 1)
	fmt.Printf("{%s} ε=%.1f\n", strings.Join(top[0].Names, ","), top[0].Epsilon)
	// Output: {B} ε=1.0
}

// ExampleDedupPatterns collapses the duplicate {6..11} community that
// appears for {A}, {B} and {A,B}.
func ExampleDedupPatterns() {
	g := scpm.PaperExample()
	m, _ := scpm.NewMiner(
		scpm.WithSigmaMin(3), scpm.WithGamma(0.6), scpm.WithMinSize(4),
		scpm.WithEpsMin(0.5), scpm.WithTopK(10),
	)
	res, _ := m.Mine(context.Background(), g)
	dedup := scpm.DedupPatterns(res.Patterns, g.NumVertices(), 1.0)
	fmt.Println(len(res.Patterns), "->", len(dedup))
	// Output: 7 -> 5
}
