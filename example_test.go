package scpm_test

import (
	"fmt"
	"strings"

	scpm "github.com/scpm/scpm"
)

// ExampleMine reproduces the attribute sets of the paper's worked
// example (Figure 1, §2.1.2).
func ExampleMine() {
	g := scpm.PaperExample()
	res, err := scpm.Mine(g, scpm.Params{
		SigmaMin: 3,
		Gamma:    0.6,
		MinSize:  4,
		EpsMin:   0.5,
		K:        10,
	})
	if err != nil {
		panic(err)
	}
	for _, s := range res.Sets {
		fmt.Printf("{%s} σ=%d ε=%.2f\n", strings.Join(s.Names, ","), s.Support, s.Epsilon)
	}
	// Output:
	// {A} σ=11 ε=0.82
	// {B} σ=6 ε=1.00
	// {A,B} σ=6 ε=1.00
}

// ExampleMine_patterns lists the structural correlation patterns of
// Table 1.
func ExampleMine_patterns() {
	g := scpm.PaperExample()
	res, _ := scpm.Mine(g, scpm.Params{
		SigmaMin: 3, Gamma: 0.6, MinSize: 4, EpsMin: 0.5, K: 10,
	})
	for _, p := range res.Patterns {
		fmt.Printf("({%s},{%s}) size=%d γ=%.2f\n",
			strings.Join(p.Names, ","),
			strings.Join(p.VertexNames(g), ","),
			p.Size(), p.Density())
	}
	// Output:
	// ({A},{6,7,8,9,10,11}) size=6 γ=0.60
	// ({A},{3,4,5,6}) size=4 γ=1.00
	// ({A},{3,4,6,7}) size=4 γ=0.67
	// ({A},{3,5,6,7}) size=4 γ=0.67
	// ({A},{3,6,7,8}) size=4 γ=0.67
	// ({B},{6,7,8,9,10,11}) size=6 γ=0.60
	// ({A,B},{6,7,8,9,10,11}) size=6 γ=0.60
}

// ExampleNewBuilder shows incremental graph construction.
func ExampleNewBuilder() {
	b := scpm.NewBuilder()
	b.AddVertex("alice", "databases", "go")
	b.AddVertex("bob", "databases")
	b.AddEdgeByName("alice", "bob")
	g, _ := b.Build()
	fmt.Println(g.NumVertices(), g.NumEdges(), g.NumAttributes())
	// Output: 2 1 2
}

// ExampleTopSets ranks mined attribute sets the way the paper's
// case-study tables do.
func ExampleTopSets() {
	g := scpm.PaperExample()
	res, _ := scpm.Mine(g, scpm.Params{SigmaMin: 3, Gamma: 0.6, MinSize: 4})
	top := scpm.TopSets(res.Sets, scpm.ByEpsilon, 1)
	fmt.Printf("{%s} ε=%.1f\n", strings.Join(top[0].Names, ","), top[0].Epsilon)
	// Output: {B} ε=1.0
}

// ExampleDedupPatterns collapses the duplicate {6..11} community that
// appears for {A}, {B} and {A,B}.
func ExampleDedupPatterns() {
	g := scpm.PaperExample()
	res, _ := scpm.Mine(g, scpm.Params{
		SigmaMin: 3, Gamma: 0.6, MinSize: 4, EpsMin: 0.5, K: 10,
	})
	dedup := scpm.DedupPatterns(res.Patterns, g.NumVertices(), 1.0)
	fmt.Println(len(res.Patterns), "->", len(dedup))
	// Output: 7 -> 5
}
