package scpm_test

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"

	scpm "github.com/scpm/scpm"
)

// mine runs a batch mine through the Miner API with the given
// parameter block (the facade's only mining entry point).
func mine(t *testing.T, g *scpm.Graph, p scpm.Params, extra ...scpm.Option) *scpm.Result {
	t.Helper()
	m, err := scpm.NewMiner(append([]scpm.Option{scpm.WithParams(p)}, extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Mine(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestQuickstartFlow exercises the public API end to end the way the
// doc.go example does.
func TestQuickstartFlow(t *testing.T) {
	b := scpm.NewBuilder()
	names := []string{"alice", "bob", "carol", "dave"}
	for _, n := range names {
		if _, err := b.AddVertex(n, "db", "go"); err != nil {
			t.Fatal(err)
		}
	}
	// a 4-clique of database gophers
	for i := int32(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if err := b.AddEdge(i, j); err != nil {
				t.Fatal(err)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := mine(t, g, scpm.Params{SigmaMin: 2, Gamma: 1, MinSize: 3, K: 2})
	set := res.SetByNames("db", "go")
	if set == nil || set.Epsilon != 1 {
		t.Fatalf("expected ε=1 for {db,go}: %+v", set)
	}
	pats := res.PatternsOf(set.Attrs)
	if len(pats) != 1 || pats[0].Size() != 4 {
		t.Fatalf("expected one 4-clique pattern, got %v", pats)
	}
	if got := pats[0].VertexNames(g); len(got) != 4 || got[0] != "alice" {
		t.Fatalf("names = %v", got)
	}
}

func TestPaperExampleThroughFacade(t *testing.T) {
	g := scpm.PaperExample()
	p := scpm.Params{SigmaMin: 3, Gamma: 0.6, MinSize: 4, EpsMin: 0.5, K: 10}
	res := mine(t, g, p)
	naive := mine(t, g, p, scpm.WithNaive())
	if len(res.Sets) != 3 || len(naive.Sets) != 3 || len(res.Patterns) != 7 {
		t.Fatalf("unexpected counts: %d sets, %d patterns", len(res.Sets), len(res.Patterns))
	}
	top := scpm.TopSets(res.Sets, scpm.ByEpsilon, 1)
	if top[0].Epsilon != 1 {
		t.Fatalf("top ε = %v", top[0])
	}
	if scpm.BySupport.String() != "σ" {
		t.Fatal("ranking name")
	}
}

func TestDatasetRoundTripThroughFacade(t *testing.T) {
	g := scpm.PaperExample()
	var attrs, edges bytes.Buffer
	if err := scpm.WriteDataset(g, &attrs, &edges); err != nil {
		t.Fatal(err)
	}
	g2, err := scpm.ReadDataset(strings.NewReader(attrs.String()), strings.NewReader(edges.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed graph: %v vs %v", g2, g)
	}
}

func TestNullModelsThroughFacade(t *testing.T) {
	g := scpm.PaperExample()
	p := scpm.Params{SigmaMin: 3, Gamma: 0.6, MinSize: 4}
	ana := scpm.NewAnalyticalModel(g, p)
	sim := scpm.NewSimulationModel(g, p, 20, 7)
	for sigma := 4; sigma <= 11; sigma++ {
		a, s := ana.Exp(sigma), sim.Exp(sigma)
		if a < 0 || a > 1 || s < 0 || s > 1 {
			t.Fatalf("σ=%d: out of range a=%v s=%v", sigma, a, s)
		}
		if s > a+1e-9 {
			t.Fatalf("σ=%d: sim %v exceeds analytical bound %v", sigma, s, a)
		}
	}
	p.Model = sim
	mine(t, g, p)
}

func TestFindQuasiCliques(t *testing.T) {
	g := scpm.PaperExample()
	all, err := scpm.FindQuasiCliques(g, 0.6, 4)
	if err != nil {
		t.Fatal(err)
	}
	// the five maximal quasi-cliques of the full example graph
	if len(all) != 5 {
		t.Fatalf("got %d quasi-cliques: %v", len(all), all)
	}
	if all[0].Size() != 6 {
		t.Fatalf("largest = %v", all[0])
	}
	top, err := scpm.TopQuasiCliques(g, 0.6, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 || top[0].Size() != 6 || top[1].Density() != 1 {
		t.Fatalf("top = %v", top)
	}
	if _, err := scpm.FindQuasiCliques(g, 0, 4); err == nil {
		t.Fatal("invalid gamma accepted")
	}
}

func TestGenerateThroughFacade(t *testing.T) {
	g, gt, err := scpm.Generate(scpm.GeneratorConfig{
		Name:             "facade",
		Seed:             3,
		NumVertices:      300,
		AvgDegree:        3,
		DegreeExponent:   2.5,
		VocabSize:        60,
		AttrsPerVertex:   3,
		ZipfS:            0.8,
		NumCommunities:   6,
		CommunitySizeMin: 5,
		CommunitySizeMax: 8,
		IntraProb:        0.8,
		TopicAttrs:       2,
		NumAreas:         3,
		TopicAdoption:    0.9,
		TopicNoise:       0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 300 || len(gt.Communities) != 6 {
		t.Fatalf("unexpected generation: %v, %d communities", g, len(gt.Communities))
	}
	res := mine(t, g, scpm.Params{SigmaMin: 4, Gamma: 0.5, MinSize: 4, K: 1, MaxAttrs: 2})
	if len(res.Sets) == 0 {
		t.Fatal("no sets mined from generated graph")
	}
	// δ must be finite or +Inf, never NaN
	for _, s := range res.Sets {
		if math.IsNaN(s.Delta) {
			t.Fatalf("NaN delta: %+v", s)
		}
	}
}
