package scpm

// One benchmark per table and figure of the paper's evaluation (§4),
// plus ablations. Each benchmark runs the corresponding experiment of
// internal/experiments at a reduced scale so `go test -bench=.` stays
// laptop-friendly; cmd/scpm-bench runs the full-scale sweeps.
//
// Custom metrics reported alongside ns/op:
//
//	sets/op        attribute sets emitted
//	speedup        naive time / SCPM-DFS time (fig8 benches)
//	max/sim        analytical bound looseness (fig4/7/9 benches)

import (
	"context"
	"testing"

	"github.com/scpm/scpm/internal/experiments"
)

// benchScale trades fidelity for wall-clock time in `go test -bench=.`
// on the three case-study datasets. SmallDBLP always runs at its tuned
// scale: its σmin/min_size defaults are calibrated there, and shrinking
// it further would distort the Figure-8 speedups it exists to measure.
const benchScale = 0.5

func loadB(b *testing.B, name string) *experiments.Dataset {
	b.Helper()
	scale := benchScale
	if name == "smalldblp" {
		scale = 1.0
	}
	d, err := experiments.Load(name, scale)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func BenchmarkTable1ExampleGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if !r.Match {
			b.Fatal("Table 1 mismatch")
		}
	}
}

func benchTopSets(b *testing.B, dataset string) {
	d := loadB(b, dataset)
	b.ResetTimer()
	var sets int
	for i := 0; i < b.N; i++ {
		r, err := experiments.TopSets(context.Background(), d, 10)
		if err != nil {
			b.Fatal(err)
		}
		sets = r.Sets
	}
	b.ReportMetric(float64(sets), "sets/op")
}

func BenchmarkTable2DBLPTopSets(b *testing.B)     { benchTopSets(b, "dblp") }
func BenchmarkTable3LastFmTopSets(b *testing.B)   { benchTopSets(b, "lastfm") }
func BenchmarkTable4CiteSeerTopSets(b *testing.B) { benchTopSets(b, "citeseer") }

func benchExpected(b *testing.B, dataset string, frac float64) {
	d := loadB(b, dataset)
	sigmas := experiments.DefaultSigmas(d.Graph.NumVertices(), frac, 6)
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExpectedCurve(d, sigmas, 25, 99)
		if err != nil {
			b.Fatal(err)
		}
		if !r.BoundHolds {
			b.Fatal("analytical bound violated")
		}
		last := r.Points[len(r.Points)-1]
		if last.SimMean > 0 {
			ratio = last.MaxExp / last.SimMean
		}
	}
	b.ReportMetric(ratio, "max/sim")
}

func BenchmarkFigure4DBLPExpected(b *testing.B)     { benchExpected(b, "dblp", 0.10) }
func BenchmarkFigure7LastFmExpected(b *testing.B)   { benchExpected(b, "lastfm", 0.37) }
func BenchmarkFigure9CiteSeerExpected(b *testing.B) { benchExpected(b, "citeseer", 0.10) }

// benchPerfPanel runs one Figure-8 panel at a single representative
// parameter point per sub-benchmark, reporting the naive/DFS speedup.
func benchPerfPanel(b *testing.B, varying string, values []float64) {
	d := loadB(b, "smalldblp")
	for _, v := range values {
		v := v
		b.Run(benchName(varying, v), func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				r, err := experiments.Perf(context.Background(), d, varying, []float64{v}, true, 1)
				if err != nil {
					b.Fatal(err)
				}
				p := r.Points[0]
				if p.DFS > 0 {
					speedup = float64(p.Naive) / float64(p.DFS)
				}
			}
			b.ReportMetric(speedup, "speedup")
		})
	}
}

func benchName(varying string, v float64) string {
	return varying + "=" + trimFloat(v)
}

func trimFloat(v float64) string {
	s := make([]byte, 0, 8)
	if v < 0 {
		s = append(s, '-')
		v = -v
	}
	whole := int64(v)
	s = appendInt(s, whole)
	frac := v - float64(whole)
	if frac > 1e-9 {
		s = append(s, '.')
		s = appendInt(s, int64(frac*100+0.5))
	}
	return string(s)
}

func appendInt(s []byte, v int64) []byte {
	if v == 0 {
		return append(s, '0')
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return append(s, buf[i:]...)
}

func BenchmarkFigure8aRuntimeVsGamma(b *testing.B) {
	benchPerfPanel(b, "gamma", []float64{0.5, 0.8})
}

func BenchmarkFigure8bRuntimeVsMinSize(b *testing.B) {
	d := loadB(b, "smalldblp")
	base := experiments.PerfBase(d)
	benchPerfPanel(b, "min_size", []float64{float64(base.MinSize), float64(base.MinSize + 2)})
}

func BenchmarkFigure8cRuntimeVsSigmaMin(b *testing.B) {
	d := loadB(b, "smalldblp")
	base := experiments.PerfBase(d)
	benchPerfPanel(b, "sigma_min", []float64{float64(base.SigmaMin), float64(base.SigmaMin * 2)})
}

func BenchmarkFigure8dRuntimeVsEpsMin(b *testing.B) {
	benchPerfPanel(b, "eps_min", []float64{0.1, 0.25})
}

func BenchmarkFigure8eRuntimeVsDeltaMin(b *testing.B) {
	benchPerfPanel(b, "delta_min", []float64{10, 50})
}

func BenchmarkFigure8fRuntimeVsK(b *testing.B) {
	benchPerfPanel(b, "k", []float64{1, 16})
}

func benchSensitivityPanel(b *testing.B, varying string, values []float64) {
	d := loadB(b, "smalldblp")
	b.ResetTimer()
	var avgEps float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Sensitivity(context.Background(), d, varying, values)
		if err != nil {
			b.Fatal(err)
		}
		avgEps = r.Points[len(r.Points)-1].GlobalEps
	}
	b.ReportMetric(avgEps, "avg_eps")
}

func BenchmarkFigure10aSensitivityGamma(b *testing.B) {
	benchSensitivityPanel(b, "gamma", []float64{0.5, 0.7, 1.0})
}

func BenchmarkFigure10bSensitivityMinSize(b *testing.B) {
	d := loadB(b, "smalldblp")
	base := d.Params()
	benchSensitivityPanel(b, "min_size",
		[]float64{float64(base.MinSize), float64(base.MinSize + 2)})
}

func BenchmarkFigure10cSensitivitySigmaMin(b *testing.B) {
	d := loadB(b, "smalldblp")
	base := d.Params()
	benchSensitivityPanel(b, "sigma_min",
		[]float64{float64(base.SigmaMin), float64(base.SigmaMin * 2)})
}

// Ablation benches: each design choice toggled off, one sub-benchmark
// per variant (E10).
func BenchmarkAblationSCPMVariants(b *testing.B) {
	d := loadB(b, "smalldblp")
	variants := []struct {
		name string
		mod  func(p *Params)
	}{
		{"full-dfs", func(p *Params) {}},
		{"bfs", func(p *Params) { p.Order = BFS }},
		{"no-vertex-pruning", func(p *Params) { p.DisableVertexPruning = true }},
		{"no-set-pruning", func(p *Params) { p.DisableSetPruning = true }},
		{"no-lookahead", func(p *Params) { p.DisableLookahead = true }},
		{"no-diameter", func(p *Params) { p.DisableDiameterPruning = true }},
		{"no-jumps", func(p *Params) { p.DisableJumps = true }},
		{"parallel-4", func(p *Params) { p.Parallelism = 4 }},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			p := experiments.PerfBase(d)
			v.mod(&p)
			m, err := NewMiner(WithParams(p))
			if err != nil {
				b.Fatal(err)
			}
			var sets int
			for i := 0; i < b.N; i++ {
				res, err := m.Mine(context.Background(), d.Graph)
				if err != nil {
					b.Fatal(err)
				}
				sets = len(res.Sets)
			}
			b.ReportMetric(float64(sets), "sets/op")
		})
	}
}

// BenchmarkNaiveBaseline measures the §3.1 baseline on its own so the
// naive-vs-SCPM gap is visible in the -bench output.
func BenchmarkNaiveBaseline(b *testing.B) {
	d := loadB(b, "smalldblp")
	p := experiments.PerfBase(d)
	m, err := NewMiner(WithParams(p), WithNaive())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := m.Mine(context.Background(), d.Graph); err != nil {
			b.Fatal(err)
		}
	}
}
