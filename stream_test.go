package scpm_test

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	scpm "github.com/scpm/scpm"
)

// paperMiner builds a Miner with the worked-example parameters of
// Figure 1 / Table 1.
func paperMiner(t *testing.T, extra ...scpm.Option) *scpm.Miner {
	t.Helper()
	opts := append([]scpm.Option{
		scpm.WithSigmaMin(3),
		scpm.WithGamma(0.6),
		scpm.WithMinSize(4),
		scpm.WithEpsMin(0.5),
		scpm.WithTopK(10),
	}, extra...)
	m, err := scpm.NewMiner(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// generated returns a small deterministic synthetic graph plus a Miner
// tuned for it.
func generated(t *testing.T, extra ...scpm.Option) (*scpm.Graph, *scpm.Miner) {
	t.Helper()
	g, _, err := scpm.Generate(scpm.GeneratorConfig{
		Name:             "stream-test",
		Seed:             99,
		NumVertices:      600,
		AvgDegree:        4,
		DegreeExponent:   2.3,
		VocabSize:        120,
		AttrsPerVertex:   5,
		ZipfS:            0.6,
		NumCommunities:   18,
		CommunitySizeMin: 5,
		CommunitySizeMax: 10,
		IntraProb:        0.8,
		TopicAttrs:       2,
		NumAreas:         6,
		TopicAdoption:    0.85,
		TopicNoise:       1,
		SparseFrac:       0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := append([]scpm.Option{
		scpm.WithSigmaMin(5),
		scpm.WithGamma(0.5),
		scpm.WithMinSize(4),
		scpm.WithTopK(2),
		scpm.WithMaxAttrs(2),
	}, extra...)
	m, err := scpm.NewMiner(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return g, m
}

func setKeys(sets []scpm.AttributeSet) []string {
	out := make([]string, len(sets))
	for i, s := range sets {
		out[i] = fmt.Sprintf("%s|σ=%d|ε=%.6f|δ=%.6g|cov=%d",
			s.Key(), s.Support, s.Epsilon, s.Delta, s.Covered)
	}
	sort.Strings(out)
	return out
}

func patternKeys(pats []scpm.Pattern) []string {
	out := make([]string, len(pats))
	for i, p := range pats {
		out[i] = fmt.Sprintf("%s|%v|deg=%d|e=%d", strings.Join(p.Names, ","), p.Vertices, p.MinDeg, p.Edges)
	}
	sort.Strings(out)
	return out
}

func equalStrings(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d items, want %d\ngot:  %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s[%d]:\ngot:  %s\nwant: %s", label, i, got[i], want[i])
		}
	}
}

// collectSink records every event it receives in arrival order.
type collectSink struct {
	sets     []scpm.AttributeSet
	patterns []scpm.Pattern
	progress []scpm.Stats
}

func (c *collectSink) OnAttributeSet(s scpm.AttributeSet) { c.sets = append(c.sets, s) }
func (c *collectSink) OnPattern(p scpm.Pattern)           { c.patterns = append(c.patterns, p) }
func (c *collectSink) OnProgress(st scpm.Stats)           { c.progress = append(c.progress, st) }

// TestStreamMatchesBatch is the core API-parity check: all three
// consumption modes must produce identical attribute sets and patterns
// on the paper's worked example and on a generated graph.
func TestStreamMatchesBatch(t *testing.T) {
	ctx := context.Background()
	type scenario struct {
		name  string
		graph *scpm.Graph
		miner *scpm.Miner
	}
	genGraph, genMiner := generated(t)
	scenarios := []scenario{
		{"paper", scpm.PaperExample(), paperMiner(t)},
		{"generated", genGraph, genMiner},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			batch, err := sc.miner.Mine(ctx, sc.graph)
			if err != nil {
				t.Fatal(err)
			}
			if len(batch.Sets) == 0 {
				t.Fatal("scenario mined nothing; thresholds too strict for a meaningful test")
			}

			var sink collectSink
			if err := sc.miner.Stream(ctx, sc.graph, &sink); err != nil {
				t.Fatal(err)
			}
			equalStrings(t, "stream sets", setKeys(sink.sets), setKeys(batch.Sets))
			equalStrings(t, "stream patterns", patternKeys(sink.patterns), patternKeys(batch.Patterns))

			var iterated []scpm.AttributeSet
			for s, err := range sc.miner.Sets(ctx, sc.graph) {
				if err != nil {
					t.Fatal(err)
				}
				iterated = append(iterated, s)
			}
			equalStrings(t, "iterator sets", setKeys(iterated), setKeys(batch.Sets))
		})
	}
}

// TestParallelMatchesSequential pins down that worker parallelism only
// changes scheduling, never output.
func TestParallelMatchesSequential(t *testing.T) {
	ctx := context.Background()
	g, seq := generated(t)
	_, par := generated(t, scpm.WithParallelism(4))
	want, err := seq.Mine(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := par.Mine(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	equalStrings(t, "parallel sets", setKeys(got.Sets), setKeys(want.Sets))
	equalStrings(t, "parallel patterns", patternKeys(got.Patterns), patternKeys(want.Patterns))

	var sink collectSink
	if err := par.Stream(ctx, g, &sink); err != nil {
		t.Fatal(err)
	}
	equalStrings(t, "parallel stream sets", setKeys(sink.sets), setKeys(want.Sets))
}

// orderSink asserts the canonical event order: every OnPattern belongs
// to the most recent OnAttributeSet.
type orderSink struct {
	t       *testing.T
	current []string
	bursts  int
}

func (o *orderSink) OnAttributeSet(s scpm.AttributeSet) {
	o.current = s.Names
	o.bursts++
}

func (o *orderSink) OnPattern(p scpm.Pattern) {
	if o.current == nil {
		o.t.Error("OnPattern before any OnAttributeSet")
		return
	}
	if strings.Join(p.Names, ",") != strings.Join(o.current, ",") {
		o.t.Errorf("pattern for %v arrived during burst of %v", p.Names, o.current)
	}
}

func (o *orderSink) OnProgress(scpm.Stats) {}

// TestStreamEventOrder verifies the per-set burst contract and that
// progress events fire.
func TestStreamEventOrder(t *testing.T) {
	g := scpm.PaperExample()
	m := paperMiner(t, scpm.WithProgressEvery(1))
	sink := &orderSink{t: t}
	var progress int
	wrapped := scpm.SinkFuncs{
		AttributeSet: sink.OnAttributeSet,
		Pattern:      sink.OnPattern,
		Progress:     func(scpm.Stats) { progress++ },
	}
	if err := m.Stream(context.Background(), g, wrapped); err != nil {
		t.Fatal(err)
	}
	if sink.bursts != 3 {
		t.Fatalf("expected 3 attribute-set bursts, got %d", sink.bursts)
	}
	if progress < 2 {
		t.Fatalf("expected periodic progress events, got %d", progress)
	}
}

// cancelingModel wraps the analytical null model and cancels the run's
// context after a fixed number of evaluations — a deterministic way to
// interrupt mining mid-search.
type cancelingModel struct {
	inner  scpm.NullModel
	cancel context.CancelCauseFunc
	left   int
}

func (c *cancelingModel) Exp(sigma int) float64 {
	c.left--
	if c.left == 0 {
		c.cancel(errTestCause)
	}
	return c.inner.Exp(sigma)
}

func (c *cancelingModel) Name() string { return "canceling-" + c.inner.Name() }

var errTestCause = errors.New("test cause: enough mining")

// TestCancelMidMine cancels a context mid-run on a generated graph and
// checks for ErrCanceled, the wrapped cause, and a well-formed partial
// result that is a subset of the full output.
func TestCancelMidMine(t *testing.T) {
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)

	g, plain := generated(t)
	full, err := plain.Mine(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Sets) < 4 {
		t.Fatalf("need a graph with several qualifying sets, got %d", len(full.Sets))
	}

	model := &cancelingModel{
		inner:  scpm.NewAnalyticalModel(g, plain.Params()),
		cancel: cancel,
		left:   len(full.Sets)/2 + 1,
	}
	_, m := generated(t, scpm.WithNullModel(model))

	start := time.Now()
	res, err := m.Mine(ctx, g)
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v, not bounded", elapsed)
	}
	if !errors.Is(err, scpm.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !scpm.IsCanceled(err) {
		t.Fatal("IsCanceled must agree with errors.Is")
	}
	if !errors.Is(err, errTestCause) {
		t.Fatalf("err = %v, should wrap context.Cause", err)
	}
	if res == nil {
		t.Fatal("canceled Mine must still return the partial result")
	}
	if len(res.Sets) >= len(full.Sets) {
		t.Fatalf("expected a strict partial result, got %d of %d sets", len(res.Sets), len(full.Sets))
	}
	// Every partial set must appear in the full result with identical
	// metrics: partial means truncated, never wrong.
	fullKeys := make(map[string]bool)
	for _, k := range setKeys(full.Sets) {
		fullKeys[k] = true
	}
	for _, k := range setKeys(res.Sets) {
		if !fullKeys[k] {
			t.Fatalf("partial result contains set absent from full output: %s", k)
		}
	}
	if res.Stats.Duration <= 0 {
		t.Fatal("partial result must carry run stats")
	}
}

// TestCancelBeforeMine: an already-done context yields ErrCanceled
// immediately with an empty but well-formed result.
func TestCancelBeforeMine(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := paperMiner(t)
	res, err := m.Mine(ctx, scpm.PaperExample())
	if !errors.Is(err, scpm.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
	if res == nil || len(res.Sets) != 0 {
		t.Fatalf("want empty well-formed result, got %+v", res)
	}
}

// TestCancelNaive: the naive baseline observes cancellation too.
func TestCancelNaive(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := paperMiner(t, scpm.WithNaive())
	res, err := m.Mine(ctx, scpm.PaperExample())
	if !errors.Is(err, scpm.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res == nil {
		t.Fatal("canceled naive mine must return a partial result")
	}
}

// TestSearchBudget: an exhausted node budget surfaces ErrBudget with
// the partial result.
func TestSearchBudget(t *testing.T) {
	g, _ := generated(t)
	m, err := scpm.NewMiner(
		scpm.WithSigmaMin(5), scpm.WithGamma(0.5), scpm.WithMinSize(4),
		scpm.WithSearchBudget(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Mine(context.Background(), g)
	if !errors.Is(err, scpm.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if res == nil {
		t.Fatal("budget-stopped mine must return a partial result")
	}
}

// TestSetsEarlyBreak: breaking out of the iterator cancels the search
// cleanly instead of leaking the mining goroutine.
func TestSetsEarlyBreak(t *testing.T) {
	g, m := generated(t)
	var got int
	for _, err := range m.Sets(context.Background(), g) {
		if err != nil {
			t.Fatal(err)
		}
		got++
		if got == 1 {
			break
		}
	}
	if got != 1 {
		t.Fatalf("yielded %d sets after break", got)
	}
}

// TestSetsSurfacesError: a canceled context reaches the consumer as the
// iterator's final error pair.
func TestSetsSurfacesError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := paperMiner(t)
	var sawErr error
	for _, err := range m.Sets(ctx, scpm.PaperExample()) {
		if err != nil {
			sawErr = err
		}
	}
	if !errors.Is(sawErr, scpm.ErrCanceled) {
		t.Fatalf("iterator error = %v, want ErrCanceled", sawErr)
	}
}

// TestNewMinerValidates: invalid configurations are rejected at
// construction, not mid-run.
func TestNewMinerValidates(t *testing.T) {
	cases := [][]scpm.Option{
		{scpm.WithGamma(7)},
		{scpm.WithGamma(0)},
		{scpm.WithSigmaMin(0)},
		{scpm.WithMinSize(1)},
		{scpm.WithEpsMin(1.5)},
		{scpm.WithTopK(-1)},
	}
	for i, opts := range cases {
		if _, err := scpm.NewMiner(opts...); err == nil {
			t.Errorf("case %d: NewMiner accepted invalid options", i)
		}
	}
}

// TestQuasiCliqueHelpersValidate: the structural helpers reject invalid
// parameters up front instead of failing deep in the search.
func TestQuasiCliqueHelpersValidate(t *testing.T) {
	g := scpm.PaperExample()
	if _, err := scpm.FindQuasiCliques(g, 0, 4); err == nil {
		t.Error("FindQuasiCliques accepted gamma=0")
	}
	if _, err := scpm.FindQuasiCliques(g, 1.5, 4); err == nil {
		t.Error("FindQuasiCliques accepted gamma=1.5")
	}
	if _, err := scpm.TopQuasiCliques(g, 0.6, 1, 3); err == nil {
		t.Error("TopQuasiCliques accepted minSize=1")
	}
	qcs, err := scpm.FindQuasiCliques(g, 0.6, 4)
	if err != nil || len(qcs) == 0 {
		t.Fatalf("valid enumeration failed: %v (%d results)", err, len(qcs))
	}
}

// TestWithParamsMatchesOptions: seeding a Miner from a whole parameter
// block (the migration path of the removed package-level Mine shim)
// produces the same output as the equivalent functional options.
func TestWithParamsMatchesOptions(t *testing.T) {
	g := scpm.PaperExample()
	p := scpm.Params{SigmaMin: 3, Gamma: 0.6, MinSize: 4, EpsMin: 0.5, K: 10}
	fromParams, err := scpm.NewMiner(scpm.WithParams(p))
	if err != nil {
		t.Fatal(err)
	}
	old, err := fromParams.Mine(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := paperMiner(t).Mine(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	equalStrings(t, "params sets", setKeys(old.Sets), setKeys(res.Sets))
	equalStrings(t, "params patterns", patternKeys(old.Patterns), patternKeys(res.Patterns))
}

// TestRemineThroughFacade: the live-update flow end to end on the
// public API — mine with WithLiveUpdates, apply a delta, Remine, and
// match a from-scratch mine of the updated graph.
func TestRemineThroughFacade(t *testing.T) {
	ctx := context.Background()
	g := scpm.PaperExample()
	m := paperMiner(t, scpm.WithLiveUpdates())
	old, err := m.Mine(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if !old.HasLattice() {
		t.Fatal("WithLiveUpdates run did not record a lattice")
	}

	d := g.NewDelta()
	if err := d.AddVertex("12", "A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge("12", "1"); err != nil {
		t.Fatal(err)
	}
	ng, cs, err := g.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if ng.Version() != 2 || cs.ToVersion != 2 {
		t.Fatalf("versions after apply: graph %d, changes →%d", ng.Version(), cs.ToVersion)
	}

	scratch, err := m.Mine(ctx, ng)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := m.Remine(ctx, ng, old, cs)
	if err != nil {
		t.Fatal(err)
	}
	equalStrings(t, "remine sets", setKeys(inc.Sets), setKeys(scratch.Sets))
	equalStrings(t, "remine patterns", patternKeys(inc.Patterns), patternKeys(scratch.Patterns))
	if inc.Stats.ReusedSets == 0 {
		t.Fatalf("facade remine reused nothing: %+v", inc.Stats)
	}
}
