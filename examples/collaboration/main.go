// Collaboration-network analysis, mirroring the paper's DBLP case study
// (§4.1.1): which research topics (attribute-set pairs) actually induce
// collaboration communities, and which merely co-occur in many titles?
//
// The program generates a synthetic co-authorship graph (power-law
// background + planted topic communities), mines it with SCPM and
// contrasts the support ranking against the ε and δlb rankings — the
// paper's core observation is that they disagree.
//
// Run with: go run ./examples/collaboration
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"

	scpm "github.com/scpm/scpm"
)

func main() {
	g, truth, err := scpm.Generate(scpm.GeneratorConfig{
		Name:             "collab",
		Seed:             42,
		NumVertices:      3000,
		AvgDegree:        5,
		DegreeExponent:   2.3,
		VocabSize:        700,
		AttrsPerVertex:   6,
		ZipfS:            0.55,
		PhraseProb:       0.35,
		NumCommunities:   110,
		CommunitySizeMin: 8,
		CommunitySizeMax: 16,
		IntraProb:        0.7,
		TopicAttrs:       2,
		NumAreas:         18,
		TopicAdoption:    0.85,
		TopicNoise:       1.0,
		SparseFrac:       0.4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("co-authorship graph: %d authors, %d collaborations, %d title terms\n",
		g.NumVertices(), g.NumEdges(), g.NumAttributes())
	fmt.Printf("planted: %d research groups across %d topics\n\n",
		len(truth.Communities), len(truth.Areas))

	// Ctrl-C stops the search in bounded time; whatever was mined so
	// far is still reported below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	miner, err := scpm.NewMiner(
		scpm.WithSigmaMin(12),
		scpm.WithGamma(0.5),
		scpm.WithMinSize(5),
		scpm.WithMinAttrs(2), // topic = at least two terms, like the DBLP study
		scpm.WithMaxAttrs(3),
		scpm.WithTopK(3),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := miner.Mine(ctx, g)
	if errors.Is(err, scpm.ErrCanceled) {
		fmt.Println("interrupted — reporting partial results")
	} else if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scored %d attribute sets in %v\n\n", len(res.Sets), res.Stats.Duration)

	show := func(title string, ranking scpm.Ranking) {
		fmt.Println(title)
		for _, s := range scpm.TopSets(res.Sets, ranking, 5) {
			fmt.Printf("  {%s} σ=%d ε=%.3f δlb=%.3g\n",
				strings.Join(s.Names, " "), s.Support, s.Epsilon, s.Delta)
		}
		fmt.Println()
	}
	show("most frequent topics (high σ — generic term pairs):", scpm.BySupport)
	show("most correlated topics (high ε — community-forming):", scpm.ByEpsilon)
	show("most significant topics (high δlb — beyond chance):", scpm.ByDelta)

	// show the biggest community found for the top-δ topic
	top := scpm.TopSets(res.Sets, scpm.ByDelta, 1)[0]
	pats := res.PatternsOf(top.Attrs)
	if len(pats) > 0 {
		fmt.Printf("largest community around {%s}: %d researchers, density %.2f\n",
			strings.Join(top.Names, " "), pats[0].Size(), pats[0].Density())
	}
}
