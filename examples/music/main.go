// Music-network analysis, mirroring the paper's LastFm case study
// (§4.1.2): popular artists have enormous listener bases, but does a
// musical taste actually knit friend circles together?
//
// The generated graph has very popular "mainstream" artists (huge σ,
// weak structure) and niche taste communities (moderate σ, dense friend
// circles). SCPM's δ ranking surfaces the latter — the analogue of
// {Sufjan Stevens, Wilco} topping the paper's Table 3 while Radiohead
// tops only the support column.
//
// Run with: go run ./examples/music
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	scpm "github.com/scpm/scpm"
)

func main() {
	g, truth, err := scpm.Generate(scpm.GeneratorConfig{
		Name:             "music",
		Seed:             7,
		NumVertices:      3000,
		AvgDegree:        2.6,
		DegreeExponent:   2.6,
		VocabSize:        6000,
		AttrsPerVertex:   25,
		ZipfS:            0.75,
		NumCommunities:   60,
		CommunitySizeMin: 6,
		CommunitySizeMax: 16,
		IntraProb:        0.8,
		TopicAttrs:       2,
		NumAreas:         12,
		TopicAdoption:    0.9,
		TopicNoise:       9,
		SparseFrac:       0.35,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("music network: %d users, %d friendships, %d artists\n",
		g.NumVertices(), g.NumEdges(), g.NumAttributes())
	fmt.Printf("planted: %d friend circles across %d niche scenes\n\n",
		len(truth.Communities), len(truth.Areas))

	miner, err := scpm.NewMiner(
		scpm.WithSigmaMin(150), // like the paper, σmin is a large share of users
		scpm.WithGamma(0.5),
		scpm.WithMinSize(5),
		scpm.WithMaxAttrs(2),
		scpm.WithTopK(1),
		scpm.WithProgressEvery(200),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Consume the run as a stream: artist sets and taste communities
	// arrive (and could be served, persisted, rendered …) while the
	// search is still exploring the rest of the attribute lattice.
	var (
		sets     []scpm.AttributeSet
		largest  *scpm.Pattern
		lastStat scpm.Stats
	)
	err = miner.Stream(context.Background(), g, scpm.SinkFuncs{
		AttributeSet: func(s scpm.AttributeSet) { sets = append(sets, s) },
		Pattern: func(p scpm.Pattern) {
			if largest == nil || p.Size() > largest.Size() {
				largest = &p
			}
		},
		Progress: func(st scpm.Stats) { lastStat = st },
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scored %d artist sets in %v (%d evaluated)\n\n",
		len(sets), lastStat.Duration, lastStat.SetsEvaluated)

	fmt.Println("most listened (σ) — mainstream, weak structure:")
	for _, s := range scpm.TopSets(sets, scpm.BySupport, 5) {
		fmt.Printf("  %-24s σ=%d ε=%.3f δlb=%.3g\n",
			strings.Join(s.Names, "+"), s.Support, s.Epsilon, s.Delta)
	}
	fmt.Println("\nmost community-forming (δlb) — niche scenes:")
	for _, s := range scpm.TopSets(sets, scpm.ByDelta, 5) {
		fmt.Printf("  %-24s σ=%d ε=%.3f δlb=%.3g\n",
			strings.Join(s.Names, "+"), s.Support, s.Epsilon, s.Delta)
	}

	// the largest taste community (the paper's Figure 5(b) analogue)
	if largest != nil {
		fmt.Printf("\nlargest taste community: %d fans of {%s}, density %.2f\n",
			largest.Size(), strings.Join(largest.Names, ", "), largest.Density())
	}
}
