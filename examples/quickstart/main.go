// Quickstart: reproduce the paper's worked example (Figure 1 / Table 1).
//
// The program builds the 11-vertex attributed graph of Figure 1, mines
// it with the parameters of §2.1.2 (σmin=3, γmin=0.6, min_size=4,
// εmin=0.5) and prints the structural correlation patterns — the exact
// rows of Table 1.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	scpm "github.com/scpm/scpm"
)

func main() {
	g := scpm.PaperExample()
	fmt.Printf("graph: %d vertices, %d edges, %d attributes\n\n",
		g.NumVertices(), g.NumEdges(), g.NumAttributes())

	miner, err := scpm.NewMiner(
		scpm.WithSigmaMin(3), // attribute sets must occur on ≥ 3 vertices
		scpm.WithGamma(0.6),  // each member has ≥ ⌈0.6(|Q|−1)⌉ neighbors in Q
		scpm.WithMinSize(4),  // quasi-cliques have ≥ 4 vertices
		scpm.WithEpsMin(0.5), // at least half of V(S) must be covered
		scpm.WithTopK(10),    // top-10 patterns per attribute set
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := miner.Mine(context.Background(), g)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("attribute sets (Definition 2):")
	for _, s := range res.Sets {
		fmt.Printf("  {%s}: σ=%d ε=%.2f δlb=%.2f\n",
			strings.Join(s.Names, ","), s.Support, s.Epsilon, s.Delta)
	}

	fmt.Println("\nstructural correlation patterns (Table 1):")
	fmt.Printf("  %-28s %5s %6s\n", "pattern", "size", "γ")
	for _, p := range res.Patterns {
		fmt.Printf("  ({%s},{%s}) %*d %6.2f\n",
			strings.Join(p.Names, ","),
			strings.Join(p.VertexNames(g), ","),
			26-len(strings.Join(p.Names, ","))-len(strings.Join(p.VertexNames(g), ",")),
			p.Size(), p.Density())
	}
}
