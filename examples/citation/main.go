// Citation-network analysis, mirroring the paper's CiteSeer case study
// (§4.1.3): which abstract-term pairs identify coherent "research
// fronts" — groups of papers densely citing each other — rather than
// just frequent phrases?
//
// This example also demonstrates the two null models: the analytical
// δlb (default, fast) and the simulation-based δsim, compared side by
// side for the top sets, plus the BFS search order and the naive
// baseline cross-check.
//
// Run with: go run ./examples/citation
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"strings"

	scpm "github.com/scpm/scpm"
)

func main() {
	g, _, err := scpm.Generate(scpm.GeneratorConfig{
		Name:             "citations",
		Seed:             2010, // the paper crawled CiteSeerX in March 2010
		NumVertices:      2500,
		AvgDegree:        5.3,
		DegreeExponent:   2.2,
		VocabSize:        1800,
		AttrsPerVertex:   9,
		ZipfS:            0.72,
		PhraseProb:       0.30,
		NumCommunities:   55,
		CommunitySizeMin: 5,
		CommunitySizeMax: 12,
		IntraProb:        0.75,
		TopicAttrs:       2,
		NumAreas:         12,
		TopicAdoption:    0.85,
		TopicNoise:       2,
		SparseFrac:       0.35,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("citation graph: %d papers, %d citations, %d abstract terms\n\n",
		g.NumVertices(), g.NumEdges(), g.NumAttributes())

	params := scpm.Params{
		SigmaMin: 18,
		Gamma:    0.5,
		MinSize:  5,
		MinAttrs: 2,
		MaxAttrs: 3,
		K:        2,
	}
	ctx := context.Background()

	// WithParams is the migration path from the deprecated package-level
	// Mine; further options layer on top of the seeded block.
	miner, err := scpm.NewMiner(
		scpm.WithParams(params),
		scpm.WithSearchOrder(scpm.BFS), // exercise the SCPM-BFS strategy
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := miner.Mine(ctx, g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SCPM-BFS scored %d term sets in %v\n", len(res.Sets), res.Stats.Duration)

	// cross-check against the naive §3.1 baseline on the same input
	naiveMiner, err := scpm.NewMiner(scpm.WithParams(params), scpm.WithNaive())
	if err != nil {
		log.Fatal(err)
	}
	naive, err := naiveMiner.Mine(ctx, g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive baseline agrees on %v sets: %v (took %v)\n\n",
		len(naive.Sets), len(naive.Sets) == len(res.Sets), naive.Stats.Duration)

	// compare δlb against δsim for the most significant research fronts
	sim := scpm.NewSimulationModel(g, params, 50, 11)
	fmt.Println("top research fronts (δlb vs δsim):")
	fmt.Printf("  %-34s %6s %8s %10s %10s\n", "terms", "σ", "ε", "δlb", "δsim")
	for _, s := range scpm.TopSets(res.Sets, scpm.ByDelta, 8) {
		// at small σ no random sample contains a quasi-clique, so
		// sim-εexp underflows to 0 and δsim diverges — the reason the
		// paper's simulation needs r ≥ 100 samples at larger supports
		simExp := sim.Exp(s.Support)
		deltaSim := math.Inf(1)
		if simExp > 0 {
			deltaSim = s.Epsilon / simExp
		} else if s.Epsilon == 0 {
			deltaSim = 0
		}
		fmt.Printf("  %-34s %6d %8.3f %10.3g %10.3g\n",
			strings.Join(s.Names, " "), s.Support, s.Epsilon, s.Delta, deltaSim)
	}

	front := scpm.TopSets(res.Sets, scpm.ByDelta, 1)[0]
	for _, p := range res.PatternsOf(front.Attrs) {
		fmt.Printf("\nresearch front {%s}: %d papers, density %.2f\n",
			strings.Join(p.Names, " "), p.Size(), p.Density())
	}
}
