// Command lintdoc fails when a package exports an identifier without a
// doc comment. CI runs it over the algorithmic core — internal/graph,
// internal/quasiclique, internal/core, internal/epsilon,
// internal/nullmodel and internal/itemset — so those layers' contracts
// (sorted views, no-mutate rules, estimator guarantees) stay written
// down.
//
// Usage:
//
//	go run ./tools/lintdoc ./internal/graph ./internal/quasiclique
//
// A declaration group (var/const block) counts as documented when the
// group has a doc comment, matching godoc's rendering. Test files are
// skipped.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: lintdoc <package-dir> [package-dir...]")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		missing, err := lintDir(strings.TrimPrefix(dir, "./"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "lintdoc:", err)
			os.Exit(2)
		}
		for _, m := range missing {
			fmt.Println(m)
		}
		bad += len(missing)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "lintdoc: %d exported identifier(s) missing doc comments\n", bad)
		os.Exit(1)
	}
}

// lintDir parses every non-test Go file of a directory and returns one
// "file:line: name" entry per undocumented exported declaration.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: exported %s %s has no doc comment",
			filepath.ToSlash(p.Filename), p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						report(d.Pos(), "function", funcName(d))
					}
				case *ast.GenDecl:
					lintGenDecl(d, report)
				}
			}
		}
	}
	return missing, nil
}

// funcName renders "Recv.Name" for methods, "Name" otherwise.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + d.Name.Name
	}
	return d.Name.Name
}

// lintGenDecl checks type/const/var declarations. A spec inside a
// parenthesized group passes when either the spec or the group carries
// a doc comment.
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	kind := map[token.Token]string{
		token.TYPE:  "type",
		token.CONST: "const",
		token.VAR:   "var",
	}[d.Tok]
	if kind == "" {
		return
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && d.Doc == nil {
				report(s.Pos(), kind, s.Name.Name)
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if name.IsExported() && s.Doc == nil && s.Comment == nil && d.Doc == nil {
					report(name.Pos(), kind, name.Name)
				}
			}
		}
	}
}
