package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name, dataset string, nodes int64) string {
	t.Helper()
	path := filepath.Join(dir, name)
	content := `{
  "schema": "scpm-bench/v7",
  "dataset": "` + dataset + `",
  "runs": [
    {"scale": 0.1, "epsilon_mode": "exact", "wall_ms": 50.0, "search_nodes": ` +
		itoa(nodes) + `, "allocs": 9000}
  ]
}`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// writeShardReport writes a shard-section-only report whose three rows
// (n=1,2,4 on dblp@0.2) carry the given speedups.
func writeShardReport(t *testing.T, dir, name string, speedups [3]float64) string {
	t.Helper()
	path := filepath.Join(dir, name)
	content := fmt.Sprintf(`{
  "schema": "scpm-bench/v7",
  "dataset": "shard",
  "shard": {
    "mining": [
      {"dataset": "dblp", "scale": 0.2, "shards": 1, "speedup": %g},
      {"dataset": "dblp", "scale": 0.2, "shards": 2, "speedup": %g},
      {"dataset": "dblp", "scale": 0.2, "shards": 4, "speedup": %g}
    ]
  }
}`, speedups[0], speedups[1], speedups[2])
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// defGates returns the flag defaults, matching main.
func defGates() gates {
	return gates{tolerance: 0.05, shardTolerance: 0.25, bootFloor: 10, bootTolerance: 0.25}
}

// writeBootReport writes a boot-section-only report with two rows: a
// large dblp snapshot (the one facing the hard floor) and a small
// dense one.
func writeBootReport(t *testing.T, dir, name string, dblpSpeedup, denseSpeedup float64, verified bool) string {
	t.Helper()
	path := filepath.Join(dir, name)
	content := fmt.Sprintf(`{
  "schema": "scpm-bench/v8",
  "dataset": "boot",
  "boot": {
    "repeats": 5,
    "runs": [
      {"dataset": "dblp", "scale": 0.2, "snapshot_bytes": 26000000, "speedup": %g, "verified": %t},
      {"dataset": "dense", "scale": 0.2, "snapshot_bytes": 112000, "speedup": %g, "verified": %t}
    ]
  }
}`, dblpSpeedup, verified, denseSpeedup, verified)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func itoa(n int64) string {
	var b []byte
	if n == 0 {
		return "0"
	}
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestCheckPassesWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", "dense", 10000)
	cand := writeReport(t, dir, "cand.json", "dense", 10400) // +4%
	var out bytes.Buffer
	if err := check(base, cand, defGates(), &out); err != nil {
		t.Fatalf("within-tolerance growth rejected: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ok") {
		t.Fatalf("missing verdict:\n%s", out.String())
	}
}

func TestCheckFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", "dense", 10000)
	cand := writeReport(t, dir, "cand.json", "dense", 10600) // +6%
	var out bytes.Buffer
	err := check(base, cand, defGates(), &out)
	if err == nil {
		t.Fatalf("+6%% search_nodes accepted:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("missing FAIL verdict:\n%s", out.String())
	}
}

func TestCheckImprovementPasses(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", "dense", 10000)
	cand := writeReport(t, dir, "cand.json", "dense", 4000)
	var out bytes.Buffer
	if err := check(base, cand, defGates(), &out); err != nil {
		t.Fatalf("improvement rejected: %v", err)
	}
}

func TestCheckDatasetMismatch(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", "dense", 10000)
	cand := writeReport(t, dir, "cand.json", "dblp", 10000)
	if err := check(base, cand, defGates(), &bytes.Buffer{}); err == nil {
		t.Fatal("dataset mismatch accepted")
	}
}

func TestShardGatePassesWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	base := writeShardReport(t, dir, "base.json", [3]float64{0.95, 1.60, 2.10})
	cand := writeShardReport(t, dir, "cand.json", [3]float64{0.90, 1.30, 1.80}) // −19% at n=2
	var out bytes.Buffer
	if err := check(base, cand, defGates(), &out); err != nil {
		t.Fatalf("within-tolerance speedup decline rejected: %v\n%s", err, out.String())
	}
}

func TestShardGateFailsBelowFloor(t *testing.T) {
	dir := t.TempDir()
	base := writeShardReport(t, dir, "base.json", [3]float64{0.95, 1.60, 2.10})
	// n=2 at 0.98 is within 25% of baseline 1.60? No — but even if the
	// baseline itself were low, the hard floor alone must reject ≤ 1.0.
	floorBase := writeShardReport(t, dir, "floorbase.json", [3]float64{0.95, 1.01, 1.10})
	cand := writeShardReport(t, dir, "cand.json", [3]float64{0.95, 0.98, 1.05})
	var out bytes.Buffer
	if err := check(base, cand, defGates(), &out); err == nil {
		t.Fatalf("2-shard speedup 0.98 accepted:\n%s", out.String())
	}
	out.Reset()
	if err := check(floorBase, cand, gates{tolerance: 0.05, shardTolerance: 0.99, bootFloor: 10, bootTolerance: 0.25}, &out); err == nil {
		t.Fatalf("floor not enforced independently of tolerance:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "floor") {
		t.Fatalf("missing floor verdict:\n%s", out.String())
	}
}

func TestShardGateFailsOnSpeedupRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeShardReport(t, dir, "base.json", [3]float64{0.95, 1.60, 2.10})
	cand := writeShardReport(t, dir, "cand.json", [3]float64{0.95, 1.10, 2.00}) // −31% at n=2
	var out bytes.Buffer
	err := check(base, cand, defGates(), &out)
	if err == nil {
		t.Fatalf("−31%% 2-shard speedup accepted:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("missing FAIL verdict:\n%s", out.String())
	}
}

func TestBootGatePassesAboveFloor(t *testing.T) {
	dir := t.TempDir()
	base := writeBootReport(t, dir, "base.json", 100, 5, true)
	cand := writeBootReport(t, dir, "cand.json", 85, 4.5, true) // −15%, above floor
	var out bytes.Buffer
	if err := check(base, cand, defGates(), &out); err != nil {
		t.Fatalf("within-tolerance boot decline rejected: %v\n%s", err, out.String())
	}
}

func TestBootGateFloorOnlyBindsLargestSnapshot(t *testing.T) {
	dir := t.TempDir()
	base := writeBootReport(t, dir, "base.json", 100, 5, true)
	// dense at 4.5x is below the 10x floor but is the small snapshot —
	// only dblp (the largest) faces the floor.
	cand := writeBootReport(t, dir, "cand.json", 8, 4.5, true)
	var out bytes.Buffer
	if err := check(base, cand, gates{tolerance: 0.05, shardTolerance: 0.25, bootFloor: 10, bootTolerance: 0.95}, &out); err == nil {
		t.Fatalf("largest snapshot below 10x floor accepted:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "floor") {
		t.Fatalf("missing floor verdict:\n%s", out.String())
	}
}

func TestBootGateFailsOnSpeedupRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeBootReport(t, dir, "base.json", 100, 5, true)
	cand := writeBootReport(t, dir, "cand.json", 40, 4.5, true) // −60% on dblp
	var out bytes.Buffer
	if err := check(base, cand, defGates(), &out); err == nil {
		t.Fatalf("−60%% boot speedup accepted:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("missing FAIL verdict:\n%s", out.String())
	}
}

func TestBootGateRequiresVerification(t *testing.T) {
	dir := t.TempDir()
	base := writeBootReport(t, dir, "base.json", 100, 5, true)
	cand := writeBootReport(t, dir, "cand.json", 100, 5, false)
	var out bytes.Buffer
	if err := check(base, cand, defGates(), &out); err == nil {
		t.Fatalf("unverified boot rows accepted:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "cross-checked") {
		t.Fatalf("missing verification verdict:\n%s", out.String())
	}
}

func TestBootGateFailsWhenMmapSlower(t *testing.T) {
	dir := t.TempDir()
	base := writeBootReport(t, dir, "base.json", 100, 5, true)
	cand := writeBootReport(t, dir, "cand.json", 90, 0.8, true) // dense mmap slower
	var out bytes.Buffer
	if err := check(base, cand, defGates(), &out); err == nil {
		t.Fatalf("mmap-slower-than-materialize row accepted:\n%s", out.String())
	}
}

func TestShardGateNewRowFloorOnly(t *testing.T) {
	dir := t.TempDir()
	base := writeShardReport(t, dir, "base.json", [3]float64{0.95, 1.60, 2.10})
	path := filepath.Join(dir, "cand.json")
	content := `{
  "schema": "scpm-bench/v7",
  "dataset": "shard",
  "shard": {
    "mining": [
      {"dataset": "dense", "scale": 0.3, "shards": 2, "speedup": 1.4}
    ]
  }
}`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := check(base, path, defGates(), &out); err != nil {
		t.Fatalf("new shard row above floor rejected: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "new row") {
		t.Fatalf("missing new-row note:\n%s", out.String())
	}
}
