package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name, dataset string, nodes int64) string {
	t.Helper()
	path := filepath.Join(dir, name)
	content := `{
  "schema": "scpm-bench/v6",
  "dataset": "` + dataset + `",
  "runs": [
    {"scale": 0.1, "epsilon_mode": "exact", "wall_ms": 50.0, "search_nodes": ` +
		itoa(nodes) + `, "allocs": 9000}
  ]
}`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func itoa(n int64) string {
	var b []byte
	if n == 0 {
		return "0"
	}
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestCheckPassesWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", "dense", 10000)
	cand := writeReport(t, dir, "cand.json", "dense", 10400) // +4%
	var out bytes.Buffer
	if err := check(base, cand, 0.05, &out); err != nil {
		t.Fatalf("within-tolerance growth rejected: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ok") {
		t.Fatalf("missing verdict:\n%s", out.String())
	}
}

func TestCheckFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", "dense", 10000)
	cand := writeReport(t, dir, "cand.json", "dense", 10600) // +6%
	var out bytes.Buffer
	err := check(base, cand, 0.05, &out)
	if err == nil {
		t.Fatalf("+6%% search_nodes accepted:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("missing FAIL verdict:\n%s", out.String())
	}
}

func TestCheckImprovementPasses(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", "dense", 10000)
	cand := writeReport(t, dir, "cand.json", "dense", 4000)
	var out bytes.Buffer
	if err := check(base, cand, 0.05, &out); err != nil {
		t.Fatalf("improvement rejected: %v", err)
	}
}

func TestCheckDatasetMismatch(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", "dense", 10000)
	cand := writeReport(t, dir, "cand.json", "dblp", 10000)
	if err := check(base, cand, 0.05, &bytes.Buffer{}); err == nil {
		t.Fatal("dataset mismatch accepted")
	}
}
