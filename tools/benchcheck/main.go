// Command benchcheck compares a candidate BENCH_<dataset>.json against
// a committed baseline and enforces the regression gates:
//
//   - search nodes: any run whose search_nodes grew more than
//     -tolerance (default 5%) over the baseline run with the same
//     (scale, epsilon_mode) fails. search_nodes is deterministic —
//     same input, same count, on any machine at any -parallel value —
//     so this gate has no noise floor.
//   - shard speedup (BENCH_shard.json only): the 2-shard critical-path
//     speedup must stay above the hard floor of 1.0 — sharding that
//     does not divide wall time is a regression by definition — and no
//     row's speedup may fall more than -shard-tolerance (default 25%,
//     loose because speedups are wall-clock ratios and carry timing
//     noise) below its baseline.
//   - boot speedup (BENCH_boot.json only): every row's mmap-vs-
//     materialize speedup must exceed 1.0 and carry a verified
//     cross-check; the row with the largest snapshot (the
//     representative dataset — small snapshots boot in microseconds
//     either way, so their ratios are noise) must meet the -boot-floor
//     (default 10, the lazy-boot acceptance criterion); and no row may
//     fall more than -boot-tolerance below its baseline speedup.
//
// Wall-clock and allocation columns are advisory only: CI machines are
// too noisy to gate on, so deltas are printed benchstat-style for the
// reviewer and never affect the exit code.
//
// Usage:
//
//	benchcheck -baseline BENCH_dense.json -candidate out/BENCH_dense.json
//	benchcheck -baseline BENCH_shard.json -candidate out/BENCH_shard.json
//	benchcheck -baseline BENCH_boot.json -candidate out/BENCH_boot.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

// run mirrors the benchRun columns the gate consumes; unknown fields
// are ignored so the tool tolerates additive schema growth.
type run struct {
	Scale       float64 `json:"scale"`
	EpsilonMode string  `json:"epsilon_mode"`
	WallMS      float64 `json:"wall_ms"`
	SearchNodes int64   `json:"search_nodes"`
	Allocs      uint64  `json:"allocs"`
}

// shardRun mirrors the shard-section mining columns the speedup gate
// consumes.
type shardRun struct {
	Dataset string  `json:"dataset"`
	Scale   float64 `json:"scale"`
	Shards  int     `json:"shards"`
	Speedup float64 `json:"speedup"`
}

type shardSection struct {
	Mining []shardRun `json:"mining"`
}

// bootRun mirrors the boot-section columns the speedup gate consumes.
type bootRun struct {
	Dataset       string  `json:"dataset"`
	Scale         float64 `json:"scale"`
	SnapshotBytes int64   `json:"snapshot_bytes"`
	Speedup       float64 `json:"speedup"`
	Verified      bool    `json:"verified"`
}

type bootSection struct {
	Runs []bootRun `json:"runs"`
}

type report struct {
	Schema  string        `json:"schema"`
	Dataset string        `json:"dataset"`
	Runs    []run         `json:"runs"`
	Shard   *shardSection `json:"shard"`
	Boot    *bootSection  `json:"boot"`
}

func main() {
	baseline := flag.String("baseline", "", "committed baseline BENCH_*.json")
	candidate := flag.String("candidate", "", "freshly generated BENCH_*.json to check")
	tolerance := flag.Float64("tolerance", 0.05, "allowed fractional search_nodes growth over baseline")
	shardTolerance := flag.Float64("shard-tolerance", 0.25, "allowed fractional shard-speedup decline below baseline")
	bootFloor := flag.Float64("boot-floor", 10, "minimum mmap-vs-materialize boot speedup for the largest-snapshot row")
	bootTolerance := flag.Float64("boot-tolerance", 0.25, "allowed fractional boot-speedup decline below baseline")
	flag.Parse()
	if *baseline == "" || *candidate == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: -baseline and -candidate are required")
		os.Exit(2)
	}
	if err := check(*baseline, *candidate, gates{
		tolerance:      *tolerance,
		shardTolerance: *shardTolerance,
		bootFloor:      *bootFloor,
		bootTolerance:  *bootTolerance,
	}, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
}

func load(path string) (report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return report{}, err
	}
	var r report
	if err := json.Unmarshal(raw, &r); err != nil {
		return report{}, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Runs) == 0 && (r.Shard == nil || len(r.Shard.Mining) == 0) &&
		(r.Boot == nil || len(r.Boot.Runs) == 0) {
		return report{}, fmt.Errorf("%s: no runs", path)
	}
	return r, nil
}

// gates bundles the per-section thresholds.
type gates struct {
	tolerance      float64 // search_nodes growth
	shardTolerance float64 // shard-speedup decline
	bootFloor      float64 // boot-speedup hard floor (largest snapshot)
	bootTolerance  float64 // boot-speedup decline
}

// key identifies the baseline run a candidate run is compared against.
func key(r run) string { return fmt.Sprintf("%g/%s", r.Scale, r.EpsilonMode) }

func check(basePath, candPath string, g gates, out io.Writer) error {
	base, err := load(basePath)
	if err != nil {
		return err
	}
	cand, err := load(candPath)
	if err != nil {
		return err
	}
	if base.Dataset != cand.Dataset {
		return fmt.Errorf("dataset mismatch: baseline %q vs candidate %q", base.Dataset, cand.Dataset)
	}
	if cand.Shard != nil {
		if err := checkShard(base, cand, g.shardTolerance, out); err != nil {
			return err
		}
	}
	if cand.Boot != nil {
		if err := checkBoot(base, cand, g.bootFloor, g.bootTolerance, out); err != nil {
			return err
		}
	}
	tolerance := g.tolerance
	byKey := make(map[string]run, len(base.Runs))
	for _, r := range base.Runs {
		byKey[key(r)] = r
	}
	var failures int
	for _, c := range cand.Runs {
		b, ok := byKey[key(c)]
		if !ok {
			fmt.Fprintf(out, "%-16s  new run, no baseline — skipped\n", key(c))
			continue
		}
		nodesDelta := delta(float64(b.SearchNodes), float64(c.SearchNodes))
		wallDelta := delta(b.WallMS, c.WallMS)
		allocDelta := delta(float64(b.Allocs), float64(c.Allocs))
		verdict := "ok"
		if float64(c.SearchNodes) > float64(b.SearchNodes)*(1+tolerance) {
			verdict = fmt.Sprintf("FAIL (> +%.0f%%)", tolerance*100)
			failures++
		}
		fmt.Fprintf(out, "%-16s  search_nodes %8d → %8d (%+7.2f%%)  %s\n",
			key(c), b.SearchNodes, c.SearchNodes, nodesDelta, verdict)
		fmt.Fprintf(out, "%-16s  wall_ms      %8.1f → %8.1f (%+7.2f%%)  advisory\n",
			"", b.WallMS, c.WallMS, wallDelta)
		fmt.Fprintf(out, "%-16s  allocs       %8d → %8d (%+7.2f%%)  advisory\n",
			"", b.Allocs, c.Allocs, allocDelta)
	}
	if failures > 0 {
		return fmt.Errorf("%d run(s) regressed search_nodes beyond %.0f%% on %s", failures, tolerance*100, base.Dataset)
	}
	return nil
}

// shardKey identifies the baseline shard row a candidate row is
// compared against.
func shardKey(r shardRun) string { return fmt.Sprintf("%s@%g/n=%d", r.Dataset, r.Scale, r.Shards) }

// checkShard enforces the shard-speedup gate: every 2-shard row must
// beat the 1.0 hard floor (speedup is single_ms over the critical-path
// wall, so ≤ 1.0 means sharding did not divide wall time at the
// canonical deployment width), and no row may fall more than tolerance
// below its baseline speedup. Rows without a baseline face only the
// floor.
func checkShard(base, cand report, tolerance float64, out io.Writer) error {
	byKey := make(map[string]shardRun)
	if base.Shard != nil {
		for _, r := range base.Shard.Mining {
			byKey[shardKey(r)] = r
		}
	}
	var failures int
	for _, c := range cand.Shard.Mining {
		verdict := "ok"
		b, hasBase := byKey[shardKey(c)]
		switch {
		case c.Shards == 2 && c.Speedup <= 1.0:
			verdict = "FAIL (floor: 2-shard speedup must exceed 1.0)"
			failures++
		case hasBase && c.Speedup < b.Speedup*(1-tolerance):
			verdict = fmt.Sprintf("FAIL (> -%.0f%% vs baseline)", tolerance*100)
			failures++
		case !hasBase:
			verdict = "ok (new row, floor only)"
		}
		if hasBase {
			fmt.Fprintf(out, "%-20s  speedup %5.2fx → %5.2fx (%+7.2f%%)  %s\n",
				shardKey(c), b.Speedup, c.Speedup, delta(b.Speedup, c.Speedup), verdict)
		} else {
			fmt.Fprintf(out, "%-20s  speedup          %5.2fx           %s\n", shardKey(c), c.Speedup, verdict)
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d shard row(s) failed the speedup gate", failures)
	}
	return nil
}

// bootKey identifies the baseline boot row a candidate row is compared
// against.
func bootKey(r bootRun) string { return fmt.Sprintf("%s@%g", r.Dataset, r.Scale) }

// checkBoot enforces the lazy-boot gate: every row must be verified
// (contents cross-checked between modes) and faster than a full
// materialized load; the row with the largest snapshot must meet the
// hard floor — that row is the one whose O(file) + O(sets) costs are
// big enough for the ratio to be signal rather than noise — and no row
// may fall more than tolerance below its baseline speedup.
func checkBoot(base, cand report, floor, tolerance float64, out io.Writer) error {
	byKey := make(map[string]bootRun)
	if base.Boot != nil {
		for _, r := range base.Boot.Runs {
			byKey[bootKey(r)] = r
		}
	}
	var biggest string
	var maxBytes int64 = -1
	for _, c := range cand.Boot.Runs {
		if c.SnapshotBytes > maxBytes {
			biggest, maxBytes = bootKey(c), c.SnapshotBytes
		}
	}
	var failures int
	for _, c := range cand.Boot.Runs {
		verdict := "ok"
		b, hasBase := byKey[bootKey(c)]
		switch {
		case !c.Verified:
			verdict = "FAIL (modes not cross-checked)"
			failures++
		case c.Speedup <= 1.0:
			verdict = "FAIL (floor: mmap boot must beat materialize)"
			failures++
		case bootKey(c) == biggest && c.Speedup < floor:
			verdict = fmt.Sprintf("FAIL (floor: largest snapshot must boot ≥ %gx faster)", floor)
			failures++
		case hasBase && c.Speedup < b.Speedup*(1-tolerance):
			verdict = fmt.Sprintf("FAIL (> -%.0f%% vs baseline)", tolerance*100)
			failures++
		case !hasBase:
			verdict = "ok (new row, floors only)"
		}
		if hasBase {
			fmt.Fprintf(out, "%-20s  boot speedup %6.1fx → %6.1fx (%+7.2f%%)  %s\n",
				bootKey(c), b.Speedup, c.Speedup, delta(b.Speedup, c.Speedup), verdict)
		} else {
			fmt.Fprintf(out, "%-20s  boot speedup          %6.1fx           %s\n", bootKey(c), c.Speedup, verdict)
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d boot row(s) failed the speedup gate", failures)
	}
	return nil
}

// delta returns the percent change from old to new (0 when old is 0).
func delta(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}
