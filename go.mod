module github.com/scpm/scpm

go 1.24
