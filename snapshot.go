package scpm

import (
	"github.com/scpm/scpm/internal/snapshot"
)

// SnapshotBoot is a graph + index pair restored from a v3 snapshot.
// The pair may be backed by views over the snapshot's mapped bytes:
// keep the boot open for as long as either is in use (including any
// later graph generations derived from it with Apply, which share the
// base graph's arenas by reference) and Close it only when done.
type SnapshotBoot = snapshot.Boot

// SnapshotMode selects how OpenSnapshot materializes a v3 snapshot:
// page-mapped views (SnapshotMmap), a full read into private memory
// (SnapshotMaterialize), or whichever the platform supports best
// (SnapshotAuto).
type SnapshotMode = snapshot.Mode

// Snapshot boot strategies for SnapshotOptions.Mode.
const (
	SnapshotAuto        = snapshot.ModeAuto
	SnapshotMmap        = snapshot.ModeMmap
	SnapshotMaterialize = snapshot.ModeMaterialize
)

// SnapshotOptions configures OpenSnapshot; the zero value (auto mode,
// auto verification) is a sensible default.
type SnapshotOptions = snapshot.Options

// ErrV2Snapshot reports a valid v2 (index-only) snapshot; load it with
// LoadIndex and pair it with the dataset files instead.
var ErrV2Snapshot = snapshot.ErrV2Snapshot

// WriteSnapshot atomically writes the v3 snapshot of a graph/index
// pair: a self-contained, mmap-able file from which OpenSnapshot
// restores both in milliseconds. The index must have been built from
// exactly that graph.
func WriteSnapshot(path string, g *Graph, x *Index) error {
	return snapshot.Write(path, g, x)
}

// OpenSnapshot restores the graph/index pair of a v3 snapshot written
// by WriteSnapshot. A v2 file yields ErrV2Snapshot.
func OpenSnapshot(path string, opts SnapshotOptions) (*SnapshotBoot, error) {
	return snapshot.Open(path, opts)
}

// SniffSnapshot reads just the magic of a snapshot file and reports
// its format version (2 or 3), so boot code can pick a loader without
// parsing anything.
func SniffSnapshot(path string) (int, error) {
	return snapshot.Sniff(path)
}

// ParseSnapshotMode parses "auto", "mmap" or "materialize".
func ParseSnapshotMode(s string) (SnapshotMode, error) {
	return snapshot.ParseMode(s)
}
