package scpm

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"runtime"

	"github.com/scpm/scpm/internal/core"
	"github.com/scpm/scpm/internal/shard"
)

// Sink receives mining events while a run is in flight. Callbacks are
// serialized and each qualifying attribute set arrives as one atomic
// burst: OnAttributeSet followed immediately by OnPattern for each of
// its top-k patterns (best first). With WithParallelism(1) — the
// default — bursts arrive in search order. OnProgress fires every
// WithProgressEvery evaluations (default 64) and once when the run
// ends. Callbacks run on miner goroutines, so hand heavy work off to a
// channel rather than blocking the search.
type Sink = core.Sink

// SinkFuncs adapts plain functions to Sink; nil fields are skipped.
type SinkFuncs = core.SinkFuncs

// ErrCanceled reports that the mining context was done before the
// search finished. The concrete error wraps both this sentinel and
// context.Cause(ctx), so errors.Is works against either; a batch Mine
// that is canceled still returns the well-formed partial result
// collected up to that point.
var ErrCanceled = core.ErrCanceled

// ErrBudget reports that WithSearchBudget was exhausted. Like
// cancellation it accompanies the partial result mined so far.
var ErrBudget = core.ErrBudget

// Miner is a configured mining pipeline. Build one with NewMiner and
// functional options; a Miner is immutable and safe for concurrent use,
// so one instance can serve many graphs and goroutines. It offers three
// consumption modes:
//
//   - Mine: batch — block until done, get the full *Result;
//   - Stream: push — a Sink receives every set and pattern as found;
//   - Sets: pull — a Go 1.23 iterator over attribute sets.
//
// All three honor context cancellation mid-search.
type Miner struct {
	p        core.Params
	naive    bool
	shardK   int
	shardN   int
	manifest *ShardManifest
}

// Option configures a Miner.
type Option func(*Miner)

// NewMiner builds a Miner from options, validating the resulting
// configuration. Defaults: σmin=1, γ=0.5, min_size=2, sets only (no
// patterns, use WithTopK), sequential, analytical null model.
func NewMiner(opts ...Option) (*Miner, error) {
	m := &Miner{p: core.Params{SigmaMin: 1, Gamma: 0.5, MinSize: 2}}
	for _, o := range opts {
		o(m)
	}
	if err := m.p.Validate(); err != nil {
		return nil, err
	}
	switch {
	case m.manifest != nil:
		if m.naive {
			return nil, fmt.Errorf("scpm: WithShardManifest cannot be combined with WithNaive (the baseline has no partitioned path)")
		}
		if m.shardK < 0 || m.shardK >= m.manifest.Shards {
			return nil, fmt.Errorf("scpm: WithShardManifest shard %d of %d: shard index must be in 0…%d",
				m.shardK, m.manifest.Shards, m.manifest.Shards-1)
		}
		if m.manifest.Shards > 1 {
			m.p.ShardOwner = m.manifest.Owner(m.shardK)
		}
	case m.shardN > 1:
		// Resolved after all options so the owner sees the final σmin.
		if m.shardK < 0 || m.shardK >= m.shardN {
			return nil, fmt.Errorf("scpm: WithShard(%d, %d): shard index must be in 0…%d", m.shardK, m.shardN, m.shardN-1)
		}
		if m.naive {
			return nil, fmt.Errorf("scpm: WithShard cannot be combined with WithNaive (the baseline has no partitioned path)")
		}
		m.p.ShardOwner = shard.Owner(m.p.SigmaMin, m.shardK, m.shardN)
	}
	return m, nil
}

// MergeResults deterministically combines the results of n WithShard
// runs over the same graph and options into the unsharded result:
// sets and patterns re-sort into canonical order, stats counters sum
// (Duration reports the slowest shard), recorded lattices union — so
// the merged result feeds Remine exactly like an unsharded one.
// Overlapping shard results are rejected.
func MergeResults(parts ...*Result) (*Result, error) { return core.MergeResults(parts...) }

// WithSigmaMin sets the minimum attribute-set support σmin (≥ 1).
func WithSigmaMin(n int) Option { return func(m *Miner) { m.p.SigmaMin = n } }

// WithGamma sets the quasi-clique density threshold γmin ∈ (0, 1].
func WithGamma(gamma float64) Option { return func(m *Miner) { m.p.Gamma = gamma } }

// WithMinSize sets the minimum quasi-clique size min_size (≥ 2).
func WithMinSize(n int) Option { return func(m *Miner) { m.p.MinSize = n } }

// WithEpsMin sets the minimum structural correlation εmin ∈ [0, 1].
func WithEpsMin(eps float64) Option { return func(m *Miner) { m.p.EpsMin = eps } }

// WithDeltaMin sets the minimum normalized structural correlation δmin.
func WithDeltaMin(delta float64) Option { return func(m *Miner) { m.p.DeltaMin = delta } }

// WithTopK reports the k best quasi-cliques per attribute set
// (size-first, density tie-break); 0 reports attribute sets only.
func WithTopK(k int) Option { return func(m *Miner) { m.p.K = k } }

// WithAllPatterns switches to SCORP-style mining: every maximal
// quasi-clique of each qualifying set is reported and WithTopK is
// ignored.
func WithAllPatterns() Option { return func(m *Miner) { m.p.AllPatterns = true } }

// WithMinAttrs reports only attribute sets of at least n attributes.
func WithMinAttrs(n int) Option { return func(m *Miner) { m.p.MinAttrs = n } }

// WithMaxAttrs bounds the attribute-set size; 0 means unbounded.
func WithMaxAttrs(n int) Option { return func(m *Miner) { m.p.MaxAttrs = n } }

// WithSearchOrder selects the quasi-clique frontier discipline (DFS or
// BFS — the paper's SCPM-DFS / SCPM-BFS variants).
func WithSearchOrder(o SearchOrder) Option { return func(m *Miner) { m.p.Order = o } }

// WithParallelism sets the number of worker goroutines mining top-level
// attribute subtrees; n ≤ 0 uses runtime.NumCPU(). Note that with
// workers > 1, Sink bursts and Sets elements arrive in nondeterministic
// order (batch results are canonically sorted either way).
func WithParallelism(n int) Option {
	return func(m *Miner) {
		if n <= 0 {
			n = runtime.NumCPU()
		}
		m.p.Parallelism = n
	}
}

// ShardManifest is the checksummed shard map written by scpm-gateway
// -plan (internal/shard's Manifest): which shard owns which lattice
// prefix, against which dataset — and, in its v2 form, every sealed
// level-1 verdict. Load one with LoadShardManifest and boot a replica
// from it with WithShardManifest.
type ShardManifest = shard.Manifest

// LoadShardManifest reads and verifies a shard manifest file (v1 or
// v2).
func LoadShardManifest(path string) (*ShardManifest, error) { return shard.LoadManifest(path) }

// WithShardManifest boots shard k of the deployment the manifest
// plans: lattice ownership comes from the manifest's root assignments
// (re-derived deterministically once live updates move the graph past
// the planned version), and — when the manifest is v2 — the sealed
// level-1 verdicts are injected so the boot mine replays every level-1
// evaluation instead of re-searching it. Mining parameters must match
// the fingerprint the verdicts were sealed under; Mine fails loudly
// otherwise. A v1 manifest behaves exactly like WithShard(k,
// man.Shards).
func WithShardManifest(man *ShardManifest, k int) Option {
	return func(m *Miner) { m.manifest, m.shardK, m.shardN = man, k, man.Shards }
}

// WithShard restricts the run to shard k of an n-way partition of the
// attribute-set lattice (0 ≤ k < n): only the Eclat subtrees the
// partition planner assigns to shard k are emitted, recorded and
// counted, so n such runs (same graph, same options, k = 0…n-1) mine
// disjoint slices whose MergeResults reproduces the unsharded run
// bit-identically — in exact and sampled ε modes, stats counters
// included (only Duration differs: merged runs report the slowest
// shard). The partition is re-derived deterministically per graph
// version, so Remine after updates stays correctly sharded. n ≤ 1
// disables sharding.
func WithShard(k, n int) Option {
	return func(m *Miner) { m.shardK, m.shardN = k, n }
}

// WithNullModel plugs a null model supplying εexp for δ normalization;
// the default is the analytical upper bound of Theorem 2.
func WithNullModel(nm NullModel) Option { return func(m *Miner) { m.p.Model = nm } }

// WithEpsilonSampling switches ε computation to the sampling estimator
// of §6 of the paper: instead of the full coverage search, each
// attribute set draws a deterministic Hoeffding-sized vertex sample from
// V(S) and answers one early-exit quasi-clique membership query per
// draw, so |ε̂−ε| ≤ eps with probability ≥ 1−delta per set. Estimated
// sets carry Estimated=true, EpsilonErr and SampledVertices; sets whose
// support does not exceed the sample size are still computed exactly.
// Non-positive eps or delta use the defaults (0.1, 0.05 — 185 samples).
// Applies to the SCPM algorithm; WithNaive always computes ε exactly.
// Combine with WithSeed to pin the sample randomness.
func WithEpsilonSampling(eps, delta float64) Option {
	return func(m *Miner) {
		m.p.EpsilonMode = core.EpsilonSampled
		// Negative values mean "default" like zero does, matching the
		// documented contract (Params.Validate rejects negatives).
		m.p.SampleEps = max(eps, 0)
		m.p.SampleDelta = max(delta, 0)
	}
}

// WithSeed sets the seed deriving all sampling randomness of the run
// (WithEpsilonSampling): the same seed reproduces every estimate
// bit-for-bit regardless of WithParallelism or evaluation order.
func WithSeed(seed int64) Option { return func(m *Miner) { m.p.Seed = seed } }

// WithSearchBudget bounds the quasi-clique search to n nodes per
// induced graph (0 = unbounded); an exhausted budget ends the run with
// ErrBudget and the partial result.
func WithSearchBudget(n int64) Option { return func(m *Miner) { m.p.SearchBudget = n } }

// WithLiveUpdates makes every run record its search lattice into the
// Result, enabling incremental re-mining after graph updates: apply a
// batch of changes with Graph.NewDelta + Graph.Apply, then call
// Miner.Remine with the old result and the ChangeSet — only attribute
// sets the update could have affected are recomputed. Costs memory
// proportional to the evaluated lattice; leave it off for one-shot
// batch runs.
func WithLiveUpdates() Option { return func(m *Miner) { m.p.RecordLattice = true } }

// WithProgressEvery sets how many attribute-set evaluations elapse
// between Sink.OnProgress callbacks (default 64).
func WithProgressEvery(n int) Option { return func(m *Miner) { m.p.ProgressEvery = n } }

// WithNaive mines with the naive baseline of §3.1 (Eclat × full
// quasi-clique enumeration) instead of SCPM — same output, no search
// and pruning strategies; useful for cross-checking and benchmarks.
func WithNaive() Option { return func(m *Miner) { m.naive = true } }

// WithParams seeds the whole parameter block at once — the migration
// path for callers of the deprecated package-level Mine; later options
// still apply on top.
func WithParams(p Params) Option { return func(m *Miner) { m.p = p } }

// Params returns the miner's resolved parameter block.
func (m *Miner) Params() Params { return m.p }

// Mine runs the configured algorithm on g and blocks until the search
// completes, the context is done, or the search budget runs out. On
// cancellation it returns the partial result together with an error
// satisfying errors.Is(err, ErrCanceled) (which also wraps
// context.Cause(ctx)); on budget exhaustion likewise with ErrBudget.
func (m *Miner) Mine(ctx context.Context, g *Graph) (*Result, error) {
	return m.run(ctx, g, nil)
}

// MineWithProgress is Mine with a Sink attached: the batch result is
// returned as usual while sink receives the run's events in flight —
// the hook scpm-serve uses to keep the mining gauges on /metrics live
// during a boot mine. sink may be nil.
func (m *Miner) MineWithProgress(ctx context.Context, g *Graph, sink Sink) (*Result, error) {
	return m.run(ctx, g, sink)
}

// Remine incrementally re-mines g — a graph produced from a previous
// version by Graph.Apply — reusing old (the previous version's result,
// mined by this same Miner with WithLiveUpdates) wherever changes
// proves the update cannot have altered it: attribute sets disjoint
// from the dirty attributes are carried over by value, only their
// δ-normalization is re-derived, and everything else is recomputed.
// The output is identical to Mine(ctx, g) — sets, ε, δ, patterns,
// stable ids — in both exact and sampled ε modes, with the savings
// reported in Stats.ReusedSets versus Stats.RecomputedSets.
//
// When old carries no recorded lattice (mined without WithLiveUpdates)
// or changes is nil, Remine degrades to a correct full re-mine with
// zero reuse. The naive baseline (WithNaive) has no incremental path;
// Remine then ignores old and mines fully.
func (m *Miner) Remine(ctx context.Context, g *Graph, old *Result, changes *ChangeSet) (*Result, error) {
	if m.naive {
		return core.MineNaive(ctx, g, m.p, nil)
	}
	p, err := m.paramsFor(g)
	if err != nil {
		return nil, err
	}
	return core.Remine(ctx, g, p, old, changes, nil)
}

// Stream mines g, pushing every qualifying attribute set and pattern to
// sink as the search discovers them, plus periodic OnProgress updates.
// It returns nil once the search completes; everything delivered before
// an error is valid output, so a canceled stream's events form a
// well-formed partial result.
func (m *Miner) Stream(ctx context.Context, g *Graph, sink Sink) error {
	_, err := m.run(ctx, g, sink)
	return err
}

// Sets mines g lazily, yielding each qualifying attribute set as the
// search discovers it. Breaking out of the range loop cancels the
// underlying search and releases its goroutine. If mining fails — the
// surrounding context canceled, budget exhausted, invalid parameters —
// the final pair carries the error.
func (m *Miner) Sets(ctx context.Context, g *Graph) iter.Seq2[AttributeSet, error] {
	return func(yield func(AttributeSet, error) bool) {
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()
		sets := make(chan AttributeSet)
		done := make(chan error, 1)
		go func() {
			_, err := m.run(ctx, g, SinkFuncs{
				AttributeSet: func(s AttributeSet) {
					select {
					case sets <- s:
					case <-ctx.Done():
					}
				},
			})
			close(sets)
			done <- err
		}()
		for s := range sets {
			if !yield(s, nil) {
				// Consumer broke out: stop the search and wait for the
				// miner goroutine so no callback outlives the loop.
				cancel()
				for range sets {
				}
				<-done
				return
			}
		}
		if err := <-done; err != nil {
			yield(AttributeSet{}, err)
		}
	}
}

func (m *Miner) run(ctx context.Context, g *Graph, sink Sink) (*Result, error) {
	if m.naive {
		return core.MineNaive(ctx, g, m.p, sink)
	}
	p, err := m.paramsFor(g)
	if err != nil {
		return nil, err
	}
	return core.Mine(ctx, g, p, sink)
}

// paramsFor resolves the run's parameter block for one concrete graph:
// when a v2 manifest is attached and g still sits at the sealed graph
// version, the sealed level-1 verdicts are reconstructed and injected.
// Past the sealed version (live updates) the verdicts silently expire
// and level 1 is evaluated live.
func (m *Miner) paramsFor(g *Graph) (core.Params, error) {
	p := m.p
	if m.manifest != nil && p.Level1Verdicts == nil {
		v, err := m.manifest.Level1Verdicts(g)
		if err != nil {
			return core.Params{}, fmt.Errorf("scpm: %w", err)
		}
		p.Level1Verdicts = v
	}
	return p, nil
}

// IsCanceled reports whether err is a mining cancellation — shorthand
// for errors.Is(err, ErrCanceled).
func IsCanceled(err error) bool { return errors.Is(err, ErrCanceled) }
